package sig

import (
	"crypto/dsa" //nolint:staticcheck // DSA is part of the paper's evaluation
	"crypto/ecdsa"
	"crypto/ed25519"
	"crypto/rsa"
	"crypto/x509"
	"encoding/asn1"
	"fmt"
	"math/big"
)

// MarshalVerifier serializes a public verifier so the data owner can
// publish it to users out of band (trust bundles, the /params endpoint of
// cmd/vqserve). The format is one scheme-identifying byte followed by the
// key encoding: PKIX DER for RSA/ECDSA/Ed25519, ASN.1 (P,Q,G,Y) for DSA,
// empty for the measurement-only counting scheme.
func MarshalVerifier(v Verifier) ([]byte, error) {
	switch impl := v.(type) {
	case *rsaVerifier:
		der, err := x509.MarshalPKIXPublicKey(impl.pub)
		if err != nil {
			return nil, fmt.Errorf("sig: marshal rsa: %w", err)
		}
		return append([]byte{schemeTag(RSA)}, der...), nil
	case *ecdsaVerifier:
		der, err := x509.MarshalPKIXPublicKey(impl.pub)
		if err != nil {
			return nil, fmt.Errorf("sig: marshal ecdsa: %w", err)
		}
		return append([]byte{schemeTag(ECDSA)}, der...), nil
	case *ed25519Verifier:
		der, err := x509.MarshalPKIXPublicKey(impl.pub)
		if err != nil {
			return nil, fmt.Errorf("sig: marshal ed25519: %w", err)
		}
		return append([]byte{schemeTag(Ed25519)}, der...), nil
	case *dsaVerifier:
		der, err := asn1.Marshal(dsaPublicKey{
			P: impl.pub.P, Q: impl.pub.Q, G: impl.pub.G, Y: impl.pub.Y,
		})
		if err != nil {
			return nil, fmt.Errorf("sig: marshal dsa: %w", err)
		}
		return append([]byte{schemeTag(DSA)}, der...), nil
	case countingVerifier:
		return []byte{schemeTag(Counting)}, nil
	default:
		return nil, fmt.Errorf("sig: cannot marshal verifier of type %T", v)
	}
}

// UnmarshalVerifier parses a verifier serialized by MarshalVerifier.
func UnmarshalVerifier(b []byte) (Verifier, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("sig: empty verifier encoding")
	}
	scheme, rest := tagScheme(b[0]), b[1:]
	switch scheme {
	case RSA, ECDSA, Ed25519:
		keyAny, err := x509.ParsePKIXPublicKey(rest)
		if err != nil {
			return nil, fmt.Errorf("sig: parse %s key: %w", scheme, err)
		}
		switch key := keyAny.(type) {
		case *rsa.PublicKey:
			if scheme != RSA {
				return nil, fmt.Errorf("sig: scheme tag %s but RSA key", scheme)
			}
			return &rsaVerifier{pub: key}, nil
		case *ecdsa.PublicKey:
			if scheme != ECDSA {
				return nil, fmt.Errorf("sig: scheme tag %s but ECDSA key", scheme)
			}
			return &ecdsaVerifier{pub: key}, nil
		case ed25519.PublicKey:
			if scheme != Ed25519 {
				return nil, fmt.Errorf("sig: scheme tag %s but Ed25519 key", scheme)
			}
			return &ed25519Verifier{pub: key}, nil
		default:
			return nil, fmt.Errorf("sig: unsupported PKIX key type %T", keyAny)
		}
	case DSA:
		var pk dsaPublicKey
		extra, err := asn1.Unmarshal(rest, &pk)
		if err != nil || len(extra) != 0 {
			return nil, fmt.Errorf("sig: parse dsa key: malformed")
		}
		pub := &dsa.PublicKey{
			Parameters: dsa.Parameters{P: pk.P, Q: pk.Q, G: pk.G},
			Y:          pk.Y,
		}
		return &dsaVerifier{pub: pub}, nil
	case Counting:
		if len(rest) != 0 {
			return nil, fmt.Errorf("sig: counting verifier carries unexpected bytes")
		}
		return countingVerifier{}, nil
	default:
		return nil, fmt.Errorf("sig: unknown verifier tag 0x%02x", b[0])
	}
}

// dsaPublicKey is the ASN.1 layout for a DSA public key with parameters.
type dsaPublicKey struct {
	P, Q, G, Y *big.Int
}

// schemeTag maps schemes to their one-byte wire tags.
func schemeTag(s Scheme) byte {
	switch s {
	case RSA:
		return 1
	case DSA:
		return 2
	case ECDSA:
		return 3
	case Ed25519:
		return 4
	case Counting:
		return 5
	default:
		return 0
	}
}

// tagScheme is the inverse of schemeTag.
func tagScheme(b byte) Scheme {
	switch b {
	case 1:
		return RSA
	case 2:
		return DSA
	case 3:
		return ECDSA
	case 4:
		return Ed25519
	case 5:
		return Counting
	default:
		return ""
	}
}
