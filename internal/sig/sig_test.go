package sig

import (
	"crypto/sha256"
	"errors"
	"testing"
)

// realSchemes are the cryptographic schemes; DSA is exercised separately
// because its parameter generation dominates test time.
var fastSchemes = []Scheme{RSA, ECDSA, Ed25519, Counting}

func testOptions() Options {
	// 1024-bit RSA keeps the test suite fast; production callers default
	// to 2048 by leaving RSABits at 0.
	return Options{RSABits: 1024}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	digest := sha256.Sum256([]byte("payload"))
	for _, scheme := range fastSchemes {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			s, err := NewSigner(scheme, testOptions())
			if err != nil {
				t.Fatalf("NewSigner: %v", err)
			}
			if s.Scheme() != scheme {
				t.Errorf("Scheme = %v", s.Scheme())
			}
			sigBytes, err := s.Sign(digest[:])
			if err != nil {
				t.Fatalf("Sign: %v", err)
			}
			v := s.Verifier()
			if err := v.Verify(digest[:], sigBytes); err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if v.SignatureSize() <= 0 {
				t.Error("SignatureSize should be positive")
			}
		})
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	digest := sha256.Sum256([]byte("payload"))
	other := sha256.Sum256([]byte("other"))
	for _, scheme := range fastSchemes {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			s, err := NewSigner(scheme, testOptions())
			if err != nil {
				t.Fatalf("NewSigner: %v", err)
			}
			sigBytes, err := s.Sign(digest[:])
			if err != nil {
				t.Fatalf("Sign: %v", err)
			}
			v := s.Verifier()
			// Wrong digest.
			if err := v.Verify(other[:], sigBytes); !errors.Is(err, ErrBadSignature) {
				t.Errorf("wrong digest: err = %v, want ErrBadSignature", err)
			}
			// Flipped signature bit.
			bad := append([]byte(nil), sigBytes...)
			bad[len(bad)/2] ^= 0x01
			if err := v.Verify(digest[:], bad); !errors.Is(err, ErrBadSignature) {
				t.Errorf("flipped sig: err = %v, want ErrBadSignature", err)
			}
			// Truncated signature.
			if err := v.Verify(digest[:], sigBytes[:len(sigBytes)-1]); err == nil {
				t.Error("truncated sig accepted")
			}
		})
	}
}

func TestRejectNonDigestInput(t *testing.T) {
	for _, scheme := range fastSchemes {
		s, err := NewSigner(scheme, testOptions())
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if _, err := s.Sign([]byte("short")); err == nil {
			t.Errorf("%v: signed non-32-byte input", scheme)
		}
		if err := s.Verifier().Verify([]byte("short"), nil); err == nil {
			t.Errorf("%v: verified non-32-byte input", scheme)
		}
	}
}

func TestUnknownScheme(t *testing.T) {
	if _, err := NewSigner("nope", Options{}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSchemesList(t *testing.T) {
	seen := map[Scheme]bool{}
	for _, s := range Schemes() {
		seen[s] = true
	}
	for _, want := range []Scheme{RSA, DSA, ECDSA, Ed25519, Counting} {
		if !seen[want] {
			t.Errorf("Schemes() missing %v", want)
		}
	}
}

func TestKeysAreIndependent(t *testing.T) {
	digest := sha256.Sum256([]byte("payload"))
	s1, err := NewSigner(Ed25519, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSigner(Ed25519, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sig1, _ := s1.Sign(digest[:])
	if err := s2.Verifier().Verify(digest[:], sig1); !errors.Is(err, ErrBadSignature) {
		t.Error("signature from one key verified under another")
	}
}

func TestDSASignVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("DSA parameter generation is slow")
	}
	digest := sha256.Sum256([]byte("payload"))
	s, err := NewSigner(DSA, Options{})
	if err != nil {
		t.Fatalf("NewSigner(DSA): %v", err)
	}
	sigBytes, err := s.Sign(digest[:])
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := s.Verifier().Verify(digest[:], sigBytes); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	other := sha256.Sum256([]byte("other"))
	if err := s.Verifier().Verify(other[:], sigBytes); !errors.Is(err, ErrBadSignature) {
		t.Errorf("wrong digest accepted: %v", err)
	}
}

func TestCountingSchemeIsStructural(t *testing.T) {
	digest := sha256.Sum256([]byte("payload"))
	s, _ := NewSigner(Counting, Options{})
	sig1, _ := s.Sign(digest[:])
	if len(sig1) != 256 {
		t.Errorf("counting signature size = %d, want 256 (RSA-2048 mimic)", len(sig1))
	}
	// Counting signatures still bind the digest so tamper tests work.
	other := sha256.Sum256([]byte("other"))
	if err := s.Verifier().Verify(other[:], sig1); err == nil {
		t.Error("counting scheme accepted mismatched digest")
	}
}
