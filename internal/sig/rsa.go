package sig

import (
	"crypto"
	"crypto/rsa"
	"fmt"
)

type rsaSigner struct {
	key *rsa.PrivateKey
}

type rsaVerifier struct {
	pub *rsa.PublicKey
}

func newRSASigner(opt Options) (Signer, error) {
	key, err := rsa.GenerateKey(opt.rand(), opt.rsaBits())
	if err != nil {
		return nil, fmt.Errorf("sig: rsa keygen: %w", err)
	}
	return &rsaSigner{key: key}, nil
}

func (s *rsaSigner) Scheme() Scheme { return RSA }

func (s *rsaSigner) Sign(digest []byte) ([]byte, error) {
	if len(digest) != 32 {
		return nil, fmt.Errorf("sig: rsa: digest must be 32 bytes, got %d", len(digest))
	}
	// PKCS#1 v1.5 signing of a precomputed SHA-256 digest is
	// deterministic, which keeps structure bytes reproducible.
	return rsa.SignPKCS1v15(nil, s.key, crypto.SHA256, digest)
}

func (s *rsaSigner) Verifier() Verifier { return &rsaVerifier{pub: &s.key.PublicKey} }

func (v *rsaVerifier) Scheme() Scheme { return RSA }

func (v *rsaVerifier) Verify(digest, sig []byte) error {
	if len(digest) != 32 {
		return fmt.Errorf("sig: rsa: digest must be 32 bytes, got %d", len(digest))
	}
	if err := rsa.VerifyPKCS1v15(v.pub, crypto.SHA256, digest, sig); err != nil {
		return fmt.Errorf("%w: rsa: %v", ErrBadSignature, err)
	}
	return nil
}

func (v *rsaVerifier) SignatureSize() int { return v.pub.Size() }
