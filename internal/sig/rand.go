package sig

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"io"
)

// cryptoRand returns the system entropy source. Isolated in one place so
// the schemes that need per-signature randomness (DSA, ECDSA) share it.
func cryptoRand() io.Reader { return rand.Reader }

// randReaderForParams returns the source for DSA parameter generation.
// Parameters are cached process-wide, so they always come from real
// entropy regardless of any deterministic test reader.
func randReaderForParams() io.Reader { return rand.Reader }

// DeterministicRand returns a reproducible byte stream derived from the
// seed (a SHA-256 counter stream), for Options.Rand. It exists so the
// processes of a multi-process shard deployment can derive the same
// owner key from a shared seed in demos and tests. The seed space is 64
// bits: never use it for keys that protect real data.
func DeterministicRand(seed int64) io.Reader {
	var key [8]byte
	binary.BigEndian.PutUint64(key[:], uint64(seed))
	return &detRand{key: key}
}

type detRand struct {
	key [8]byte
	ctr uint64
	buf []byte
}

func (d *detRand) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(d.buf) == 0 {
			var block [16]byte
			copy(block[:8], d.key[:])
			binary.BigEndian.PutUint64(block[8:], d.ctr)
			d.ctr++
			sum := sha256.Sum256(block[:])
			d.buf = append(d.buf, sum[:]...)
		}
		c := copy(p[n:], d.buf)
		d.buf = d.buf[c:]
		n += c
	}
	return n, nil
}
