package sig

import (
	"crypto/rand"
	"io"
)

// cryptoRand returns the system entropy source. Isolated in one place so
// the schemes that need per-signature randomness (DSA, ECDSA) share it.
func cryptoRand() io.Reader { return rand.Reader }

// randReaderForParams returns the source for DSA parameter generation.
// Parameters are cached process-wide, so they always come from real
// entropy regardless of any deterministic test reader.
func randReaderForParams() io.Reader { return rand.Reader }
