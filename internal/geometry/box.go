package geometry

import (
	"fmt"
	"math"
)

// Box is the axis-aligned bounded domain the data owner assigns to the
// function variables (the paper's "domain specified by the data owner",
// which forms the I-tree root's region). All verification structures
// partition a Box; queries whose weight vector falls outside it are
// rejected up front.
type Box struct {
	Lo, Hi []float64
}

// NewBox validates and returns a box with the given corners. Every
// dimension must satisfy Lo[i] < Hi[i] and all bounds must be finite.
func NewBox(lo, hi []float64) (Box, error) {
	if len(lo) != len(hi) {
		return Box{}, fmt.Errorf("geometry: box corners have lengths %d and %d", len(lo), len(hi))
	}
	if len(lo) == 0 {
		return Box{}, fmt.Errorf("geometry: box must have at least one dimension")
	}
	for i := range lo {
		if math.IsNaN(lo[i]) || math.IsNaN(hi[i]) || math.IsInf(lo[i], 0) || math.IsInf(hi[i], 0) {
			return Box{}, fmt.Errorf("geometry: box bounds must be finite (dim %d: [%v,%v])", i, lo[i], hi[i])
		}
		if lo[i] >= hi[i] {
			return Box{}, fmt.Errorf("geometry: box dim %d is empty: [%v,%v]", i, lo[i], hi[i])
		}
	}
	return Box{Lo: lo, Hi: hi}, nil
}

// MustBox is NewBox for statically known-good literals; it panics on error.
func MustBox(lo, hi []float64) Box {
	b, err := NewBox(lo, hi)
	if err != nil {
		panic(err)
	}
	return b
}

// Dim returns the box's dimensionality.
func (b Box) Dim() int { return len(b.Lo) }

// Contains reports whether x lies inside the closed box.
func (b Box) Contains(x Point) bool {
	if len(x) != b.Dim() {
		return false
	}
	for i, v := range x {
		if v < b.Lo[i] || v > b.Hi[i] {
			return false
		}
	}
	return true
}

// Center returns the box midpoint.
func (b Box) Center() Point {
	c := make(Point, b.Dim())
	for i := range c {
		c[i] = (b.Lo[i] + b.Hi[i]) / 2
	}
	return c
}

// Halfspaces returns the 2d closed halfspace constraints equivalent to the
// box, in the fixed order lo_0, hi_0, lo_1, hi_1, ...
func (b Box) Halfspaces() []Halfspace {
	out := make([]Halfspace, 0, 2*b.Dim())
	for i := 0; i < b.Dim(); i++ {
		lo := make([]float64, b.Dim())
		lo[i] = 1 // x_i - Lo_i >= 0
		out = append(out, Halfspace{H: Hyperplane{C: lo, B: -b.Lo[i]}})
		hi := make([]float64, b.Dim())
		hi[i] = -1 // Hi_i - x_i >= 0
		out = append(out, Halfspace{H: Hyperplane{C: hi, B: b.Hi[i]}})
	}
	return out
}
