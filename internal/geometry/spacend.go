package geometry

import (
	"fmt"

	"aqverify/internal/linalg"
	"aqverify/internal/lp"
)

// SpaceND is the LP-backed polytope space for ranking functions of two or
// more variables. A region is the owner's domain box intersected with the
// halfspaces accumulated along an I-tree path; deciding whether an
// intersection hyperplane splits a region reduces to maximizing and
// minimizing the hyperplane's affine form over the region.
type SpaceND struct {
	domain Box
	// sepTol is the strict-separation tolerance: a hyperplane only counts
	// as splitting a region if the region extends at least sepTol on both
	// sides. This suppresses degenerate sliver subdomains created by
	// float roundoff, which would otherwise have no reliably computable
	// interior witness.
	sepTol float64
	// boxRows/boxRhs cache the domain box as LP constraints (A x <= b).
	boxRows [][]float64
	boxRhs  []float64
}

// RegionND is SpaceND's Region implementation: the list of halfspaces
// accumulated by Partition calls (the domain box is implicit).
type RegionND struct {
	HSS []Halfspace
}

// DefaultSepTol is the default strict-separation tolerance for SpaceND.
const DefaultSepTol = 1e-7

// NewSpaceND builds an LP-backed space over the given domain box.
func NewSpaceND(domain Box) (*SpaceND, error) {
	if domain.Dim() < 1 {
		return nil, fmt.Errorf("geometry: SpaceND needs a positive-dimension domain")
	}
	s := &SpaceND{domain: domain, sepTol: DefaultSepTol}
	for i := 0; i < domain.Dim(); i++ {
		row := make([]float64, domain.Dim())
		row[i] = 1
		s.boxRows = append(s.boxRows, row)
		s.boxRhs = append(s.boxRhs, domain.Hi[i])
		row = make([]float64, domain.Dim())
		row[i] = -1
		s.boxRows = append(s.boxRows, row)
		s.boxRhs = append(s.boxRhs, -domain.Lo[i])
	}
	return s, nil
}

// Dim implements Space.
func (s *SpaceND) Dim() int { return s.domain.Dim() }

// Root implements Space.
func (s *SpaceND) Root() Region { return RegionND{} }

// constraints materializes box + region halfspaces as A x <= b rows.
// A halfspace C·X + B >= 0 becomes -C·X <= B.
func (s *SpaceND) constraints(r RegionND) ([][]float64, []float64) {
	a := make([][]float64, 0, len(s.boxRows)+len(r.HSS))
	b := make([]float64, 0, len(s.boxRhs)+len(r.HSS))
	a = append(a, s.boxRows...)
	b = append(b, s.boxRhs...)
	for _, hs := range r.HSS {
		a = append(a, linalg.Scale(-1, hs.H.C))
		b = append(b, hs.H.B)
	}
	return a, b
}

// Partition implements Space. The hyperplane splits the region iff the
// affine form attains values above +sepTol and below -sepTol on it.
func (s *SpaceND) Partition(r Region, h Hyperplane) (Region, Region, bool) {
	reg := r.(RegionND)
	if h.IsDegenerate() || len(h.C) != s.Dim() {
		return nil, nil, false
	}
	a, b := s.constraints(reg)

	maxRes, err := lp.Maximize(h.C, a, b)
	if err != nil || maxRes.Status != lp.Optimal || maxRes.Objective+h.B <= s.sepTol {
		return nil, nil, false
	}
	minRes, err := lp.Minimize(h.C, a, b)
	if err != nil || minRes.Status != lp.Optimal || minRes.Objective+h.B >= -s.sepTol {
		return nil, nil, false
	}

	above := RegionND{HSS: appendHS(reg.HSS, Halfspace{H: h})}
	below := RegionND{HSS: appendHS(reg.HSS, Halfspace{H: h}.Negate())}
	return above, below, true
}

// appendHS appends to a copy so sibling regions never share backing
// arrays.
func appendHS(hss []Halfspace, hs Halfspace) []Halfspace {
	out := make([]Halfspace, len(hss), len(hss)+1)
	copy(out, hss)
	return append(out, hs)
}

// Witness implements Space via a Chebyshev-style interior-point LP:
// maximize t subject to C·X + B >= t*||C|| for every constraint. When the
// region has positive volume the optimum has t > 0 and X is strictly
// interior.
func (s *SpaceND) Witness(r Region) Point {
	reg := r.(RegionND)
	d := s.Dim()
	// Variables: X (d entries) then t.
	var a [][]float64
	var b []float64
	addRow := func(c []float64, bias float64) {
		// Constraint C·X + bias >= t*||C||  =>  -C·X + ||C||*t <= bias.
		row := make([]float64, d+1)
		for i, v := range c {
			row[i] = -v
		}
		row[d] = linalg.Norm2(c)
		a = append(a, row)
		b = append(b, bias)
	}
	for i := 0; i < d; i++ {
		lo := make([]float64, d)
		lo[i] = 1
		addRow(lo, -s.domain.Lo[i])
		hi := make([]float64, d)
		hi[i] = -1
		addRow(hi, s.domain.Hi[i])
	}
	for _, hs := range reg.HSS {
		addRow(hs.H.C, hs.H.B)
	}
	obj := make([]float64, d+1)
	obj[d] = 1
	res, err := lp.Maximize(obj, a, b)
	if err != nil || res.Status != lp.Optimal {
		// A region produced by Partition always has an interior, so this
		// is unreachable in practice; fall back to the box center rather
		// than panicking on numerically pathological input.
		return s.domain.Center()
	}
	return Point(res.X[:d])
}

// Halfspaces implements Space: the box constraints followed by the
// accumulated intersection halfspaces.
func (s *SpaceND) Halfspaces(r Region) []Halfspace {
	reg := r.(RegionND)
	out := s.domain.Halfspaces()
	return append(out, reg.HSS...)
}

// Contains implements Space with tolerance sepTol/2, tighter than the
// separation used when carving regions so points produced by Witness
// always pass.
func (s *SpaceND) Contains(r Region, x Point) bool {
	if len(x) != s.Dim() || !s.domain.Contains(x) {
		return false
	}
	reg := r.(RegionND)
	for _, hs := range reg.HSS {
		if !hs.Contains(x, s.sepTol/2) {
			return false
		}
	}
	return true
}
