package geometry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHyperplaneEvalSide(t *testing.T) {
	h := Hyperplane{C: []float64{2, -1}, B: 3}
	tests := []struct {
		x    Point
		eval float64
		side int
	}{
		{Point{0, 0}, 3, 1},
		{Point{0, 3}, 0, 1}, // boundary counts as above
		{Point{-2, 1}, -2, -1},
		{Point{1, 10}, -5, -1},
	}
	for _, tc := range tests {
		if got := h.Eval(tc.x); math.Abs(got-tc.eval) > 1e-12 {
			t.Errorf("Eval(%v) = %v, want %v", tc.x, got, tc.eval)
		}
		if got := h.Side(tc.x); got != tc.side {
			t.Errorf("Side(%v) = %d, want %d", tc.x, got, tc.side)
		}
	}
}

func TestHyperplaneDegenerate(t *testing.T) {
	if !(Hyperplane{C: []float64{0, 0}, B: 1}).IsDegenerate() {
		t.Error("all-zero normal should be degenerate")
	}
	if (Hyperplane{C: []float64{0, 1}, B: 1}).IsDegenerate() {
		t.Error("nonzero normal should not be degenerate")
	}
}

func TestHyperplaneEncodeRoundTrip(t *testing.T) {
	f := func(c []float64, b float64) bool {
		h := Hyperplane{C: c, B: b}
		enc := h.Encode(nil)
		got, rest, err := DecodeHyperplane(enc)
		if err != nil || len(rest) != 0 {
			return false
		}
		if len(got.C) != len(c) {
			return false
		}
		for i := range c {
			if math.Float64bits(got.C[i]) != math.Float64bits(c[i]) {
				return false
			}
		}
		return math.Float64bits(got.B) == math.Float64bits(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeHyperplaneTruncated(t *testing.T) {
	h := Hyperplane{C: []float64{1, 2, 3}, B: 4}
	enc := h.Encode(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeHyperplane(enc[:cut]); err == nil {
			t.Fatalf("DecodeHyperplane accepted truncation at %d", cut)
		}
	}
}

func TestHalfspaceContainsAndNegate(t *testing.T) {
	hs := Halfspace{H: Hyperplane{C: []float64{1}, B: -2}} // x >= 2
	if !hs.Contains(Point{2}, 0) || !hs.Contains(Point{3}, 0) {
		t.Error("closed halfspace should contain boundary and interior")
	}
	if hs.Contains(Point{1.9}, 0) {
		t.Error("closed halfspace should exclude x=1.9")
	}
	neg := hs.Negate() // x < 2 (strict)
	if !neg.Strict {
		t.Error("negation of closed halfspace should be strict")
	}
	if !neg.Contains(Point{1}, 0) {
		t.Error("negated halfspace should contain x=1")
	}
	if neg.Negate().Strict {
		t.Error("double negation should restore closedness")
	}
}

func TestHalfspacesEncodeRoundTrip(t *testing.T) {
	hss := []Halfspace{
		{H: Hyperplane{C: []float64{1, 2}, B: 3}},
		{H: Hyperplane{C: []float64{-1, 0.5}, B: -7}, Strict: true},
	}
	enc := EncodeHalfspaces(nil, hss)
	got, rest, err := DecodeHalfspaces(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v (rest %d)", err, len(rest))
	}
	if len(got) != len(hss) {
		t.Fatalf("got %d halfspaces, want %d", len(got), len(hss))
	}
	for i := range hss {
		if got[i].Strict != hss[i].Strict || got[i].H.B != hss[i].H.B {
			t.Errorf("halfspace %d mismatch: %+v vs %+v", i, got[i], hss[i])
		}
	}
}

func TestNewBoxValidation(t *testing.T) {
	if _, err := NewBox([]float64{0}, []float64{0}); err == nil {
		t.Error("empty interval should fail")
	}
	if _, err := NewBox([]float64{0, 1}, []float64{1}); err == nil {
		t.Error("mismatched corners should fail")
	}
	if _, err := NewBox(nil, nil); err == nil {
		t.Error("zero-dimensional box should fail")
	}
	if _, err := NewBox([]float64{math.Inf(-1)}, []float64{1}); err == nil {
		t.Error("infinite bound should fail")
	}
	b, err := NewBox([]float64{-1, 0}, []float64{1, 5})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	if !b.Contains(Point{0, 2.5}) || b.Contains(Point{0, 6}) || b.Contains(Point{0}) {
		t.Error("Contains misbehaves")
	}
	c := b.Center()
	if c[0] != 0 || c[1] != 2.5 {
		t.Errorf("Center = %v", c)
	}
}

func TestBoxHalfspaces(t *testing.T) {
	b := MustBox([]float64{-1, 2}, []float64{1, 4})
	hss := b.Halfspaces()
	if len(hss) != 4 {
		t.Fatalf("got %d halfspaces, want 4", len(hss))
	}
	inside := Point{0, 3}
	outside := Point{0, 5}
	for _, hs := range hss {
		if !hs.Contains(inside, 0) {
			t.Errorf("halfspace %+v should contain %v", hs, inside)
		}
	}
	violations := 0
	for _, hs := range hss {
		if !hs.Contains(outside, 0) {
			violations++
		}
	}
	if violations == 0 {
		t.Error("outside point violates no halfspace")
	}
}

func TestSpace1DPartition(t *testing.T) {
	s, err := NewSpace1D(MustBox([]float64{0}, []float64{10}))
	if err != nil {
		t.Fatal(err)
	}
	root := s.Root()

	// 2x - 8 = 0 -> breakpoint x=4, positive slope: above is x >= 4.
	above, below, ok := s.Partition(root, Hyperplane{C: []float64{2}, B: -8})
	if !ok {
		t.Fatal("hyperplane with interior breakpoint should split")
	}
	if !s.Contains(above, Point{5}) || s.Contains(above, Point{3}) {
		t.Error("above region should be x >= 4")
	}
	if !s.Contains(below, Point{3}) || s.Contains(below, Point{5}) {
		t.Error("below region should be x < 4")
	}
	// Boundary: above closed, below strict.
	if !s.Contains(above, Point{4}) {
		t.Error("above should include the breakpoint")
	}
	if s.Contains(below, Point{4}) {
		t.Error("below should exclude the breakpoint")
	}

	// Negative slope flips sides: -1*x + 4 >= 0 is x <= 4.
	above2, below2, ok := s.Partition(root, Hyperplane{C: []float64{-1}, B: 4})
	if !ok {
		t.Fatal("split expected")
	}
	if !s.Contains(above2, Point{3}) || s.Contains(above2, Point{5}) {
		t.Error("above of negative-slope hyperplane should be x <= 4")
	}
	if !s.Contains(below2, Point{5}) {
		t.Error("below of negative-slope hyperplane should be x > 4")
	}

	// Breakpoint outside the interval does not split.
	if _, _, ok := s.Partition(root, Hyperplane{C: []float64{1}, B: -20}); ok {
		t.Error("breakpoint x=20 is outside [0,10], must not split")
	}
	// Breakpoint exactly at an endpoint does not split.
	if _, _, ok := s.Partition(root, Hyperplane{C: []float64{1}, B: 0}); ok {
		t.Error("breakpoint at endpoint must not split")
	}
	// Degenerate hyperplane does not split.
	if _, _, ok := s.Partition(root, Hyperplane{C: []float64{0}, B: 1}); ok {
		t.Error("degenerate hyperplane must not split")
	}
}

func TestSpace1DWitnessInsideRegion(t *testing.T) {
	s, _ := NewSpace1D(MustBox([]float64{0}, []float64{1}))
	r := s.Root()
	for i := 0; i < 6; i++ {
		// Repeatedly split at the witness-derived hyperplane's right half.
		w := s.Witness(r)
		if !s.Contains(r, w) {
			t.Fatalf("witness %v not inside its region", w)
		}
		above, _, ok := s.Partition(r, Hyperplane{C: []float64{1}, B: -w[0]})
		if !ok {
			t.Fatalf("split at witness %v failed", w)
		}
		r = above
	}
}

func TestSpace1DHalfspacesDescribeInterval(t *testing.T) {
	s, _ := NewSpace1D(MustBox([]float64{0}, []float64{10}))
	above, below, ok := s.Partition(s.Root(), Hyperplane{C: []float64{1}, B: -4})
	if !ok {
		t.Fatal("split expected")
	}
	for _, tc := range []struct {
		r      Region
		in     Point
		out    Point
		strict Point // excluded boundary point, NaN x to skip
	}{
		{above, Point{7}, Point{2}, Point{math.NaN()}},
		{below, Point{2}, Point{7}, Point{4}},
	} {
		hss := s.Halfspaces(tc.r)
		if len(hss) != 2 {
			t.Fatalf("got %d halfspaces, want 2", len(hss))
		}
		containsAll := func(x Point) bool {
			for _, hs := range hss {
				if !hs.Contains(x, 0) {
					return false
				}
			}
			return true
		}
		if !containsAll(tc.in) {
			t.Errorf("halfspaces exclude interior point %v", tc.in)
		}
		if containsAll(tc.out) {
			t.Errorf("halfspaces include exterior point %v", tc.out)
		}
	}
}

func TestBreakpoint1D(t *testing.T) {
	tp, ok := Breakpoint1D(Hyperplane{C: []float64{2}, B: -5})
	if !ok {
		t.Fatal("expected a breakpoint")
	}
	if f, _ := tp.Float64(); math.Abs(f-2.5) > 1e-15 {
		t.Errorf("breakpoint = %v, want 2.5", f)
	}
	if _, ok := Breakpoint1D(Hyperplane{C: []float64{0}, B: 1}); ok {
		t.Error("degenerate hyperplane should have no breakpoint")
	}
}

func TestSpaceNDPartitionAndWitness(t *testing.T) {
	s, err := NewSpaceND(MustBox([]float64{0, 0}, []float64{10, 10}))
	if err != nil {
		t.Fatal(err)
	}
	root := s.Root()

	// x - y = 0 splits the square.
	h := Hyperplane{C: []float64{1, -1}, B: 0}
	above, below, ok := s.Partition(root, h)
	if !ok {
		t.Fatal("diagonal must split the square")
	}
	wa := s.Witness(above)
	wb := s.Witness(below)
	if h.Eval(wa) <= 0 {
		t.Errorf("above witness %v not above", wa)
	}
	if h.Eval(wb) >= 0 {
		t.Errorf("below witness %v not below", wb)
	}
	if !s.Contains(above, wa) || !s.Contains(below, wb) {
		t.Error("witnesses must lie in their regions")
	}
	if s.Contains(above, wb) {
		t.Error("below witness must not be in above region")
	}

	// A hyperplane entirely outside the region must not split.
	if _, _, ok := s.Partition(root, Hyperplane{C: []float64{1, 0}, B: 5}); ok {
		t.Error("x = -5 does not meet [0,10]^2")
	}
	// Nor one that touches only a corner within sepTol.
	if _, _, ok := s.Partition(above, Hyperplane{C: []float64{1, 0}, B: 0}); ok {
		t.Error("x = 0 only grazes the above region's closure")
	}
}

func TestSpaceNDNestedPartitions(t *testing.T) {
	s, _ := NewSpaceND(MustBox([]float64{0, 0}, []float64{1, 1}))
	r := s.Root()
	hps := []Hyperplane{
		{C: []float64{1, -1}, B: 0},    // x = y
		{C: []float64{1, 1}, B: -1},    // x + y = 1
		{C: []float64{1, 0}, B: -0.75}, // x = 0.75
		{C: []float64{0, 1}, B: -0.25}, // y = 0.25
	}
	for _, h := range hps {
		above, below, ok := s.Partition(r, h)
		if !ok {
			// Fine: the shrinking region may no longer meet later planes.
			continue
		}
		// Halfspace descriptions must classify the two witnesses correctly.
		wa, wb := s.Witness(above), s.Witness(below)
		if !s.Contains(above, wa) || !s.Contains(below, wb) {
			t.Fatalf("witnesses escaped their regions after split at %+v", h)
		}
		r = above
	}
	hss := s.Halfspaces(r)
	w := s.Witness(r)
	for _, hs := range hss {
		if !hs.Contains(w, 1e-9) {
			t.Fatalf("final witness %v violates halfspace %+v", w, hs)
		}
	}
}

func TestSpaceNDRandomSplitConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s, _ := NewSpaceND(MustBox([]float64{-1, -1, -1}, []float64{1, 1, 1}))
	for trial := 0; trial < 100; trial++ {
		r := s.Root()
		depth := rng.Intn(4)
		ok := true
		for i := 0; i < depth && ok; i++ {
			h := Hyperplane{
				C: []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
				B: rng.NormFloat64() * 0.3,
			}
			var above, below Region
			above, below, ok = s.Partition(r, h)
			if !ok {
				continue
			}
			if rng.Intn(2) == 0 {
				r = above
			} else {
				r = below
			}
			_ = below
		}
		w := s.Witness(r)
		if !s.Contains(r, w) {
			t.Fatalf("trial %d: witness %v outside region", trial, w)
		}
	}
}
