package geometry

import (
	"fmt"
	"math/big"
)

// Space1D is the exact-arithmetic space for univariate ranking functions.
// Regions are open/half-open intervals whose endpoints are big.Rat
// breakpoints (every breakpoint -B/C of float64-coefficient lines is
// exactly representable as a rational), so subdomain boundaries never
// suffer float drift: two lines either cross inside a region or they do
// not, with no epsilon ambiguity.
type Space1D struct {
	domain Box
	lo, hi *big.Rat
}

// Interval1D is Space1D's Region implementation. Endpoints are always
// finite because the root region is the owner-specified bounded domain.
// The strictness flags record whether each endpoint is excluded:
// loStrict means x > lo, otherwise x >= lo (and symmetrically for hi).
type Interval1D struct {
	Lo, Hi             *big.Rat
	LoStrict, HiStrict bool
}

// NewSpace1D builds the exact 1-D space over the given domain box, which
// must be one-dimensional.
func NewSpace1D(domain Box) (*Space1D, error) {
	if domain.Dim() != 1 {
		return nil, fmt.Errorf("geometry: Space1D needs a 1-D domain, got %d-D", domain.Dim())
	}
	lo := new(big.Rat).SetFloat64(domain.Lo[0])
	hi := new(big.Rat).SetFloat64(domain.Hi[0])
	if lo == nil || hi == nil {
		return nil, fmt.Errorf("geometry: non-finite domain bounds")
	}
	return &Space1D{domain: domain, lo: lo, hi: hi}, nil
}

// Dim implements Space.
func (s *Space1D) Dim() int { return 1 }

// Root implements Space: the whole domain interval, closed on both ends.
func (s *Space1D) Root() Region {
	return Interval1D{Lo: s.lo, Hi: s.hi}
}

// Breakpoint1D returns the exact solution of C[0]*x + B = 0 as a rational,
// or ok=false when the hyperplane is degenerate (parallel functions).
func Breakpoint1D(h Hyperplane) (*big.Rat, bool) {
	if len(h.C) != 1 || h.C[0] == 0 {
		return nil, false
	}
	c := new(big.Rat).SetFloat64(h.C[0])
	b := new(big.Rat).SetFloat64(h.B)
	if c == nil || b == nil {
		return nil, false
	}
	// x = -B/C.
	t := new(big.Rat).Quo(b.Neg(b), c)
	return t, true
}

// Partition implements Space. The hyperplane c*x + b splits the interval
// iff its breakpoint t = -b/c lies strictly inside. "Above" is the side
// where c*x + b >= 0: x >= t when c > 0, x <= t when c < 0.
func (s *Space1D) Partition(r Region, h Hyperplane) (Region, Region, bool) {
	iv := r.(Interval1D)
	t, ok := Breakpoint1D(h)
	if !ok {
		return nil, nil, false
	}
	if t.Cmp(iv.Lo) <= 0 || t.Cmp(iv.Hi) >= 0 {
		return nil, nil, false
	}
	// Interval [lo, t) or (lo, t] etc: above gets the closed endpoint at t.
	if h.C[0] > 0 {
		above := Interval1D{Lo: t, Hi: iv.Hi, LoStrict: false, HiStrict: iv.HiStrict}
		below := Interval1D{Lo: iv.Lo, Hi: t, LoStrict: iv.LoStrict, HiStrict: true}
		return above, below, true
	}
	above := Interval1D{Lo: iv.Lo, Hi: t, LoStrict: iv.LoStrict, HiStrict: false}
	below := Interval1D{Lo: t, Hi: iv.Hi, LoStrict: true, HiStrict: iv.HiStrict}
	return above, below, true
}

// Witness implements Space: the interval midpoint as a float64 point.
func (s *Space1D) Witness(r Region) Point {
	m := s.WitnessRat(r)
	f, _ := m.Float64()
	return Point{f}
}

// WitnessRat returns the exact rational midpoint of the interval, for
// callers that sort record functions with exact arithmetic.
func (s *Space1D) WitnessRat(r Region) *big.Rat {
	iv := r.(Interval1D)
	m := new(big.Rat).Add(iv.Lo, iv.Hi)
	return m.Quo(m, big.NewRat(2, 1))
}

// Halfspaces implements Space: the minimal two-constraint description
// x >= lo (or > lo) and x <= hi (or < hi), expressed as halfspaces so the
// multi-signature verification object stays small.
func (s *Space1D) Halfspaces(r Region) []Halfspace {
	iv := r.(Interval1D)
	lo, _ := iv.Lo.Float64()
	hi, _ := iv.Hi.Float64()
	return []Halfspace{
		{H: Hyperplane{C: []float64{1}, B: -lo}, Strict: iv.LoStrict},
		{H: Hyperplane{C: []float64{-1}, B: hi}, Strict: iv.HiStrict},
	}
}

// Contains implements Space with an exact rational comparison (x converts
// to big.Rat losslessly).
func (s *Space1D) Contains(r Region, x Point) bool {
	if len(x) != 1 {
		return false
	}
	iv := r.(Interval1D)
	xr := new(big.Rat).SetFloat64(x[0])
	if xr == nil {
		return false
	}
	cl := xr.Cmp(iv.Lo)
	ch := xr.Cmp(iv.Hi)
	if cl < 0 || ch > 0 {
		return false
	}
	if cl == 0 && iv.LoStrict {
		return false
	}
	if ch == 0 && iv.HiStrict {
		return false
	}
	return true
}
