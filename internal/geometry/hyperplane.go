// Package geometry models the domain-partitioning machinery behind the
// I-tree: hyperplanes (function intersections), halfspaces (subdomain
// boundary constraints), boxes (owner-specified query domains), and the
// Space abstraction with two implementations — an exact rational 1-D space
// and an LP-backed n-dimensional space.
package geometry

import (
	"encoding/binary"
	"fmt"
	"math"

	"aqverify/internal/linalg"
)

// Point is a location in the function-variable domain (a vector of query
// weights in the paper's model).
type Point []float64

// Hyperplane is the zero set {X : C·X + B = 0}. In this codebase a
// hyperplane always arises as the difference of two record functions
// f_i - f_j, so C and B are the coefficient and bias differences.
type Hyperplane struct {
	C []float64
	B float64
}

// Dim returns the hyperplane's variable count.
func (h Hyperplane) Dim() int { return len(h.C) }

// Eval returns C·X + B.
func (h Hyperplane) Eval(x Point) float64 {
	return linalg.Dot(h.C, []float64(x)) + h.B
}

// Side reports which closed side of h the point x lies on: +1 when
// Eval(x) >= 0 ("above"), -1 otherwise ("below"). This matches the
// I-tree's branching rule.
func (h Hyperplane) Side(x Point) int {
	if h.Eval(x) >= 0 {
		return 1
	}
	return -1
}

// IsDegenerate reports whether the hyperplane has an all-zero normal
// vector, in which case it does not partition anything (the two functions
// are parallel — or identical when B is also zero).
func (h Hyperplane) IsDegenerate() bool {
	for _, c := range h.C {
		if c != 0 {
			return false
		}
	}
	return true
}

// Encode appends a canonical byte encoding of h to dst and returns the
// extended slice. The encoding is deterministic (big-endian IEEE-754 bit
// patterns), which makes it safe to feed into the hash functions that bind
// hyperplane identities into the IMH-tree.
func (h Hyperplane) Encode(dst []byte) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[:4], uint32(len(h.C)))
	dst = append(dst, buf[:4]...)
	for _, c := range h.C {
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(c))
		dst = append(dst, buf[:]...)
	}
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(h.B))
	return append(dst, buf[:]...)
}

// DecodeHyperplane parses a hyperplane previously written by Encode,
// returning the remaining bytes.
func DecodeHyperplane(src []byte) (Hyperplane, []byte, error) {
	if len(src) < 4 {
		return Hyperplane{}, nil, fmt.Errorf("geometry: hyperplane encoding truncated (len %d)", len(src))
	}
	n := int(binary.BigEndian.Uint32(src[:4]))
	src = src[4:]
	if n < 0 || len(src) < 8*(n+1) {
		return Hyperplane{}, nil, fmt.Errorf("geometry: hyperplane encoding truncated: need %d coefficients", n)
	}
	c := make([]float64, n)
	for i := 0; i < n; i++ {
		c[i] = math.Float64frombits(binary.BigEndian.Uint64(src[:8]))
		src = src[8:]
	}
	b := math.Float64frombits(binary.BigEndian.Uint64(src[:8]))
	return Hyperplane{C: c, B: b}, src[8:], nil
}

// Halfspace is one closed or open side of a hyperplane:
//
//	Strict == false:  C·X + B >= 0
//	Strict == true:   C·X + B  > 0
//
// A subdomain is the intersection of the halfspaces accumulated along its
// I-tree path; the multi-signature scheme ships these to the client as
// "the set of inequality functions that determines the subdomain".
type Halfspace struct {
	H      Hyperplane
	Strict bool
}

// Contains reports whether x satisfies the halfspace, using tol as the
// slack for the strict case (a strictly-inside test up to float error).
func (hs Halfspace) Contains(x Point, tol float64) bool {
	v := hs.H.Eval(x)
	if hs.Strict {
		return v > -tol
	}
	return v >= -tol
}

// Negate returns the complementary halfspace: the complement of a closed
// halfspace is strict and vice versa.
func (hs Halfspace) Negate() Halfspace {
	neg := Hyperplane{C: linalg.Scale(-1, hs.H.C), B: -hs.H.B}
	return Halfspace{H: neg, Strict: !hs.Strict}
}

// Encode appends a canonical encoding of hs to dst.
func (hs Halfspace) Encode(dst []byte) []byte {
	if hs.Strict {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return hs.H.Encode(dst)
}

// DecodeHalfspace parses a halfspace written by Encode.
func DecodeHalfspace(src []byte) (Halfspace, []byte, error) {
	if len(src) < 1 {
		return Halfspace{}, nil, fmt.Errorf("geometry: halfspace encoding empty")
	}
	strict := src[0] == 1
	h, rest, err := DecodeHyperplane(src[1:])
	if err != nil {
		return Halfspace{}, nil, err
	}
	return Halfspace{H: h, Strict: strict}, rest, nil
}

// EncodeHalfspaces appends a canonical encoding of a halfspace list: a
// count followed by each element. The order is preserved (the I-tree path
// order), so equal subdomains encode equally.
func EncodeHalfspaces(dst []byte, hss []Halfspace) []byte {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(len(hss)))
	dst = append(dst, buf[:]...)
	for _, hs := range hss {
		dst = hs.Encode(dst)
	}
	return dst
}

// DecodeHalfspaces parses a list written by EncodeHalfspaces.
func DecodeHalfspaces(src []byte) ([]Halfspace, []byte, error) {
	if len(src) < 4 {
		return nil, nil, fmt.Errorf("geometry: halfspace list truncated")
	}
	n := int(binary.BigEndian.Uint32(src[:4]))
	src = src[4:]
	if n < 0 || n > 1<<24 {
		return nil, nil, fmt.Errorf("geometry: implausible halfspace count %d", n)
	}
	out := make([]Halfspace, 0, n)
	for i := 0; i < n; i++ {
		hs, rest, err := DecodeHalfspace(src)
		if err != nil {
			return nil, nil, fmt.Errorf("geometry: halfspace %d: %w", i, err)
		}
		out = append(out, hs)
		src = rest
	}
	return out, src, nil
}
