package geometry

// Region is an opaque handle to a convex subdomain managed by a Space.
// Callers treat regions as immutable values: Partition returns fresh
// subregions and never mutates its input.
type Region interface{}

// Space abstracts the domain-partitioning geometry the I-tree is built
// over. Two implementations exist:
//
//   - Space1D: exact rational arithmetic over an interval domain, used for
//     univariate ranking functions (the scale regime of the paper's
//     evaluation).
//   - SpaceND: an LP-backed polytope space for d >= 2 variables, where
//     split tests are linear-programming feasibility problems.
//
// The I-tree construction algorithm (paper §3.1 step 1) is generic over
// this interface.
type Space interface {
	// Dim returns the number of function variables.
	Dim() int

	// Root returns the region covering the owner-specified domain.
	Root() Region

	// Partition tests whether the hyperplane h genuinely splits r (has
	// interior points of r strictly on both sides). When it does, it
	// returns the two subregions: above is r ∩ {h >= 0} and below is
	// r ∩ {h < 0}, matching the I-tree's a/b branching convention.
	Partition(r Region, h Hyperplane) (above, below Region, splits bool)

	// Witness returns a point in the interior of r, used to sort the
	// record functions for r (any interior point yields the same order,
	// by the function-sortability theorem).
	Witness(r Region) Point

	// Halfspaces returns a halfspace description of r. For the
	// multi-signature scheme this is "the set of inequality functions
	// that determines the subdomain", shipped inside verification
	// objects and bound into the subdomain digest.
	Halfspaces(r Region) []Halfspace

	// Contains reports whether x lies in r, up to the space's numeric
	// tolerance. Used by clients to validate that a claimed subdomain
	// really contains the query's function input.
	Contains(r Region, x Point) bool
}
