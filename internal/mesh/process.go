package mesh

import (
	"fmt"

	"aqverify/internal/core"
	"aqverify/internal/geometry"
	"aqverify/internal/hashing"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/record"
)

// PairProof authenticates one consecutive pair of the result chain: the
// signed run's domain interval plus the owner's signature over
// H(TagMeshPair | d_a | d_b | enc(Lo,Hi)).
type PairProof struct {
	Lo, Hi float64
	Sig    []byte
}

// VO is the mesh verification object: the window's boundary records plus
// one PairProof per consecutive pair of [left, result..., right] — |q|+1
// signatures in total, the cost that dominates the paper's Fig 7.
type VO struct {
	ListLen     int
	Left, Right core.Boundary
	Pairs       []PairProof
}

// Answer bundles a query result with its verification object.
type Answer struct {
	Query   query.Query
	Records []record.Record
	VO      VO
}

// Clone deep-copies the answer for tamper simulations.
func (a *Answer) Clone() *Answer {
	cp := &Answer{Query: a.Query, VO: a.VO}
	cp.Query.X = append(geometry.Point(nil), a.Query.X...)
	cp.Records = make([]record.Record, len(a.Records))
	for i, r := range a.Records {
		cp.Records[i] = r.Clone()
	}
	if a.VO.Left.Kind == core.BoundaryRecord {
		cp.VO.Left.Rec = a.VO.Left.Rec.Clone()
	}
	if a.VO.Right.Kind == core.BoundaryRecord {
		cp.VO.Right.Rec = a.VO.Right.Rec.Clone()
	}
	cp.VO.Pairs = make([]PairProof, len(a.VO.Pairs))
	for i, p := range a.VO.Pairs {
		cp.VO.Pairs[i] = PairProof{Lo: p.Lo, Hi: p.Hi, Sig: append([]byte(nil), p.Sig...)}
	}
	return cp
}

// Process executes an analytic query against the mesh. The subdomain
// lookup is a linear scan over the cells (counted on the counter — the
// paper's Fig 6 cost), followed by window selection on the cell's sorted
// list and one signed-run lookup per consecutive result pair.
func (m *Mesh) Process(q query.Query, ctr *metrics.Counter) (*Answer, error) {
	if err := q.Validate(1); err != nil {
		return nil, err
	}
	if !m.domain.Contains(q.X) {
		return nil, fmt.Errorf("mesh: function input %v outside the owner-specified domain", q.X)
	}

	// Linear cell scan: the mesh has no index over its subdomains.
	x := q.X[0]
	sub := m.NumSubdomains() - 1
	for k := 0; k < m.NumSubdomains(); k++ {
		ctr.AddCells(1)
		if x <= m.edges[k+1] {
			sub = k
			break
		}
	}

	perm, err := m.cursor.PermAt(sub)
	if err != nil {
		return nil, err
	}
	n := len(perm)
	scores := make([]float64, n)
	for pos, idx := range perm {
		scores[pos] = m.fs[idx].Eval(q.X)
	}
	w, err := query.SelectWindow(scores, q, ctr)
	if err != nil {
		return nil, err
	}

	vo := VO{ListLen: n}
	chain := make([]int, 0, w.Count+2)
	if w.Start == 0 {
		vo.Left = core.Boundary{Kind: core.BoundaryMin}
		chain = append(chain, EntryMin)
	} else {
		rec := m.table.Records[perm[w.Start-1]]
		vo.Left = core.Boundary{Kind: core.BoundaryRecord, Rec: rec}
		chain = append(chain, perm[w.Start-1])
	}
	records := make([]record.Record, 0, w.Count)
	for pos := w.Start; pos < w.End(); pos++ {
		records = append(records, m.table.Records[perm[pos]])
		chain = append(chain, perm[pos])
	}
	if w.End() == n {
		vo.Right = core.Boundary{Kind: core.BoundaryMax}
		chain = append(chain, EntryMax)
	} else {
		rec := m.table.Records[perm[w.End()]]
		vo.Right = core.Boundary{Kind: core.BoundaryRecord, Rec: rec}
		chain = append(chain, perm[w.End()])
	}

	vo.Pairs = make([]PairProof, 0, len(chain)-1)
	for i := 0; i+1 < len(chain); i++ {
		run, ok := m.findRun(chain[i], chain[i+1], sub, ctr)
		if !ok {
			return nil, fmt.Errorf("mesh: no signed run for pair (%d,%d) in subdomain %d", chain[i], chain[i+1], sub)
		}
		vo.Pairs = append(vo.Pairs, PairProof{Lo: run.Lo, Hi: run.Hi, Sig: run.Sig})
	}
	return &Answer{Query: q, Records: records, VO: vo}, nil
}

// Verify checks a mesh answer: every consecutive pair's digest must carry
// a valid owner signature whose run interval contains the query's
// function input, and the authenticated window must satisfy the query
// semantics. The counter observes the |q|+1 signature verifications and
// the (few) hashes — the costs of the paper's Fig 7.
func Verify(pub PublicParams, q query.Query, recs []record.Record, vo *VO, ctr *metrics.Counter) error {
	if pub.Verifier == nil {
		return fmt.Errorf("mesh: PublicParams.Verifier is required")
	}
	if vo == nil {
		return fmt.Errorf("%w: missing verification object", core.ErrVerification)
	}
	if err := q.Validate(pub.Template.Dim()); err != nil {
		return fmt.Errorf("%w: invalid query: %v", core.ErrVerification, err)
	}
	if pub.Template.Dim() != 1 {
		return fmt.Errorf("mesh: univariate only")
	}
	m := len(recs)
	if len(vo.Pairs) != m+1 {
		return fmt.Errorf("%w: %d pair proofs for %d records", core.ErrVerification, len(vo.Pairs), m)
	}
	if vo.Left.Kind == core.BoundaryMax || vo.Right.Kind == core.BoundaryMin {
		return fmt.Errorf("%w: boundary sentinel on the wrong side", core.ErrVerification)
	}
	if vo.ListLen < m {
		return fmt.Errorf("%w: claimed list length %d below result size %d", core.ErrVerification, vo.ListLen, m)
	}

	h := hashing.New(ctr)
	sentinel := func(kind core.BoundaryKind) hashing.Digest {
		if kind == core.BoundaryMin {
			return h.SentinelMin(vo.ListLen)
		}
		return h.SentinelMax(vo.ListLen)
	}
	digests := make([]hashing.Digest, 0, m+2)
	if vo.Left.Kind == core.BoundaryRecord {
		digests = append(digests, h.Record(vo.Left.Rec))
	} else {
		digests = append(digests, sentinel(vo.Left.Kind))
	}
	for _, r := range recs {
		digests = append(digests, h.Record(r))
	}
	if vo.Right.Kind == core.BoundaryRecord {
		digests = append(digests, h.Record(vo.Right.Rec))
	} else {
		digests = append(digests, sentinel(vo.Right.Kind))
	}

	x := q.X[0]
	for i, p := range vo.Pairs {
		if x < p.Lo || x > p.Hi {
			return fmt.Errorf("%w: pair %d's run interval [%v,%v] excludes the function input %v",
				core.ErrVerification, i, p.Lo, p.Hi, x)
		}
		d := h.MeshPair(digests[i], digests[i+1], runEnc(p.Lo, p.Hi))
		ctr.AddVerify(1)
		if err := pub.Verifier.Verify(d[:], p.Sig); err != nil {
			return fmt.Errorf("%w: pair %d signature: %v", core.ErrVerification, i, err)
		}
	}

	return core.CheckWindowSemantics(pub.Template, q, recs, vo.Left, vo.Right, vo.ListLen, pub.SemTol)
}
