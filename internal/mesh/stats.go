package mesh

// Stats describes a built signature mesh's footprint, mirroring
// core.Stats for the Fig 5 comparisons.
type Stats struct {
	Records    int
	Subdomains int
	// Runs is the number of signed adjacency runs (== Signatures).
	Runs           int
	Signatures     int
	SignatureBytes int
	// ApproxBytes estimates the structure size: per run a signature,
	// interval and pair identity; per subdomain one boundary value; plus
	// the records.
	ApproxBytes int
}

const bytesPerRunOverhead = 16 /* interval */ + 8 /* pair ids */ + 8 /* sub range */

// Stats computes the mesh's footprint.
func (m *Mesh) Stats() Stats {
	s := Stats{
		Records:    m.table.Len(),
		Subdomains: m.NumSubdomains(),
		Signatures: m.sigCount,
	}
	for _, rs := range m.runs {
		s.Runs += len(rs)
		for _, r := range rs {
			s.SignatureBytes += len(r.Sig)
		}
	}
	recordBytes := 0
	for _, r := range m.table.Records {
		recordBytes += len(r.Encode(nil))
	}
	s.ApproxBytes = s.Runs*bytesPerRunOverhead +
		s.SignatureBytes +
		len(m.edges)*8 +
		recordBytes
	return s
}
