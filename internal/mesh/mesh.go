// Package mesh implements the signature-mesh baseline (Yang, Cai & Hu,
// "Authentication of function queries", ICDE'16 — the paper's §2.3.1 and
// the comparison target of its entire evaluation).
//
// The data owner partitions the 1-D query domain at every pairwise
// function intersection, sorts the functions per subdomain, brackets each
// sorted list with f_min/f_max tokens, and signs a digest for every pair
// of consecutive functions. Two functions that stay consecutive across a
// maximal run of adjacent subdomains share one signature for the whole
// run — the sharing that turns the chains into a mesh.
//
// Query processing performs a linear scan over the subdomains (the cost
// the IFMH-tree's logarithmic search eliminates), and a verification
// object carries one signature per consecutive result pair (|q|+1 of
// them, versus the IFMH-tree's single signature).
package mesh

import (
	"context"
	"fmt"
	"math/big"
	"sort"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/hashing"
	"aqverify/internal/itree"
	"aqverify/internal/metrics"
	"aqverify/internal/record"
	"aqverify/internal/sig"
	"aqverify/internal/sweep"
)

// Entry identifies one member of an adjacency pair: a function index, or
// one of the sentinel tokens.
const (
	// EntryMin is the f_min token.
	EntryMin = -1
	// EntryMax is the f_max token.
	EntryMax = -2
)

// Run is one signature's coverage: the adjacency (A,B) holds throughout
// subdomains [From,To], i.e. the domain interval [Lo,Hi].
type Run struct {
	A, B     int
	From, To int
	Lo, Hi   float64
	Sig      []byte
}

type pairKey struct{ a, b int }

// Mesh is the built signature mesh, playing the same server-side role as
// core.Tree.
type Mesh struct {
	table    record.Table
	template funcs.Template
	domain   geometry.Box
	fs       []funcs.Linear
	recDig   []hashing.Digest
	hasher   *hashing.Hasher
	verifier sig.Verifier

	// edges[k]..edges[k+1] is subdomain k's interval; len(edges) = S+1.
	edges  []float64
	plan   sweep.Plan
	cursor *sweep.Cursor

	runs     map[pairKey][]*Run
	sigCount int
}

// Params configures Build.
type Params struct {
	Signer   sig.Signer
	Domain   geometry.Box
	Template funcs.Template
	// Hasher may be nil for an uninstrumented hasher.
	Hasher *hashing.Hasher
	// Workers bounds the worker pool sharding the O(n²) intersection
	// enumeration and the sweep-plan computation; zero means one per
	// CPU, one is serial. The built mesh is identical either way.
	Workers int
	// Progress, when non-nil, observes every construction stage as it
	// starts (the mesh reuses the IFMH stage names; StageITree and
	// StagePropagate never occur, StageSign covers the run signing).
	Progress func(stage core.Stage, units int)
}

// progress reports one stage start to the configured callback, if any.
func (p Params) progress(stage core.Stage, units int) {
	if p.Progress != nil {
		p.Progress(stage, units)
	}
}

// PublicParams is what the owner publishes for mesh clients.
type PublicParams struct {
	Verifier sig.Verifier
	Template funcs.Template
	// SemTol is the semantic tolerance; zero means core.DefaultSemTol.
	SemTol float64
}

// Build constructs the signature mesh. Only univariate templates are
// supported — the baseline predates multi-dimensional treatment, and the
// paper's evaluation runs it on linear (1-D) ranking functions.
func Build(tbl record.Table, p Params) (*Mesh, error) {
	return BuildCtx(context.Background(), tbl, p)
}

// BuildCtx is Build with cooperative cancellation and the enumeration
// and sweep stages sharded across p.Workers goroutines. The run-signing
// sweep itself stays serial — it is one left-to-right state machine over
// the adjacency slots — but checks ctx at every boundary.
func BuildCtx(ctx context.Context, tbl record.Table, p Params) (*Mesh, error) {
	if p.Signer == nil {
		return nil, fmt.Errorf("mesh: Params.Signer is required")
	}
	if tbl.Len() == 0 {
		return nil, fmt.Errorf("mesh: cannot outsource an empty table")
	}
	if err := p.Template.Validate(tbl.Schema.Arity()); err != nil {
		return nil, err
	}
	if p.Template.Dim() != 1 || p.Domain.Dim() != 1 {
		return nil, fmt.Errorf("mesh: the signature mesh baseline is univariate")
	}
	h := p.Hasher
	if h == nil {
		h = hashing.New(nil)
	}
	fs, err := p.Template.InterpretTable(tbl)
	if err != nil {
		return nil, err
	}
	m := &Mesh{
		table:    tbl,
		template: p.Template,
		domain:   p.Domain,
		fs:       fs,
		hasher:   h,
		verifier: p.Signer.Verifier(),
		runs:     make(map[pairKey][]*Run),
	}
	p.progress(core.StageDigest, tbl.Len())
	m.recDig = make([]hashing.Digest, tbl.Len())
	for i, r := range tbl.Records {
		if i%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		m.recDig[i] = h.Record(r)
	}

	p.progress(core.StagePairs, tbl.Len())
	bounds, groups, err := arrangement1D(ctx, fs, p.Domain, p.Workers)
	if err != nil {
		return nil, err
	}
	loR := new(big.Rat).SetFloat64(p.Domain.Lo[0])
	hiR := new(big.Rat).SetFloat64(p.Domain.Hi[0])
	edgesR := append([]*big.Rat{loR}, bounds...)
	edgesR = append(edgesR, hiR)
	witnesses := make([]*big.Rat, len(edgesR)-1)
	for k := range witnesses {
		mid := new(big.Rat).Add(edgesR[k], edgesR[k+1])
		witnesses[k] = mid.Quo(mid, big.NewRat(2, 1))
	}
	m.edges = make([]float64, len(edgesR))
	for i, e := range edgesR {
		m.edges[i], _ = e.Float64()
	}

	p.progress(core.StageSweep, len(bounds))
	m.plan, err = sweep.ComputeCtx(ctx, fs, witnesses, groups, p.Workers)
	if err != nil {
		return nil, err
	}
	m.cursor = sweep.NewCursor(m.plan)

	p.progress(core.StageSign, m.NumSubdomains())
	if err := m.buildRuns(ctx, p.Signer); err != nil {
		return nil, err
	}
	return m, nil
}

// arrangement1D computes the sorted distinct in-domain breakpoints and
// the function pairs crossing at each.
func arrangement1D(ctx context.Context, fs []funcs.Linear, domain geometry.Box, workers int) ([]*big.Rat, [][]sweep.Pair, error) {
	inters, err := itree.Pairs1DCtx(ctx, fs, domain, workers)
	if err != nil {
		return nil, nil, err
	}
	loR := new(big.Rat).SetFloat64(domain.Lo[0])
	hiR := new(big.Rat).SetFloat64(domain.Hi[0])
	type bp struct {
		t    *big.Rat
		pair sweep.Pair
	}
	bps := make([]bp, 0, len(inters))
	for _, in := range inters {
		t, ok := geometry.Breakpoint1D(in.H)
		if !ok || t.Cmp(loR) <= 0 || t.Cmp(hiR) >= 0 {
			continue // margin items from the float prefilter
		}
		bps = append(bps, bp{t: t, pair: sweep.Pair{I: in.I, J: in.J}})
	}
	sort.Slice(bps, func(a, b int) bool { return bps[a].t.Cmp(bps[b].t) < 0 })
	var bounds []*big.Rat
	var groups [][]sweep.Pair
	for _, b := range bps {
		if len(bounds) == 0 || bounds[len(bounds)-1].Cmp(b.t) != 0 {
			bounds = append(bounds, b.t)
			groups = append(groups, nil)
		}
		groups[len(groups)-1] = append(groups[len(groups)-1], b.pair)
	}
	return bounds, groups, nil
}

// NumSubdomains returns the mesh's cell count.
func (m *Mesh) NumSubdomains() int { return len(m.edges) - 1 }

// NumRecords returns the database size.
func (m *Mesh) NumRecords() int { return m.table.Len() }

// Domain returns the owner-specified bounded query domain.
func (m *Mesh) Domain() geometry.Box { return m.domain }

// SignatureCount returns the total signatures created at build time — the
// paper's Fig 5a metric for the mesh.
func (m *Mesh) SignatureCount() int { return m.sigCount }

// Public returns the parameters the owner publishes for clients.
func (m *Mesh) Public() PublicParams {
	return PublicParams{Verifier: m.verifier, Template: m.template, SemTol: core.DefaultSemTol}
}

// entryDigest maps an entry to its digest: record digests for functions,
// sentinel digests (binding the list length) for the tokens.
func (m *Mesh) entryDigest(e int) hashing.Digest {
	switch e {
	case EntryMin:
		return m.hasher.SentinelMin(m.table.Len())
	case EntryMax:
		return m.hasher.SentinelMax(m.table.Len())
	default:
		return m.recDig[e]
	}
}

// runEnc canonically encodes a run's domain interval for its digest.
func runEnc(lo, hi float64) []byte {
	h := geometry.Hyperplane{C: []float64{lo}, B: hi}
	return h.Encode(nil)
}

// buildRuns sweeps the subdomains left to right, tracking for every
// adjacency slot the run it began at, closing and signing runs whenever a
// crossing disturbs the slot.
func (m *Mesh) buildRuns(ctx context.Context, signer sig.Signer) error {
	n := m.table.Len()
	s := m.NumSubdomains()
	perm := append([]int(nil), m.plan.BasePerm...)

	type open struct {
		a, b int
		from int
	}
	// Slot i covers the pair (entry(i-1), entry(i)) for i in [0, n].
	entry := func(pos int) int {
		switch {
		case pos < 0:
			return EntryMin
		case pos >= n:
			return EntryMax
		default:
			return perm[pos]
		}
	}
	slots := make([]open, n+1)
	for i := 0; i <= n; i++ {
		slots[i] = open{a: entry(i - 1), b: entry(i), from: 0}
	}

	sign := func(o open, to int) error {
		if o.from > to {
			// Opened and disturbed within the same crossing; it never
			// covered a whole subdomain.
			return nil
		}
		lo, hi := m.edges[o.from], m.edges[to+1]
		d := m.hasher.MeshPair(m.entryDigest(o.a), m.entryDigest(o.b), runEnc(lo, hi))
		sg, err := signer.Sign(d[:])
		if err != nil {
			return fmt.Errorf("mesh: signing run (%d,%d): %w", o.a, o.b, err)
		}
		m.hasher.Counter().AddSign(1)
		m.sigCount++
		k := pairKey{o.a, o.b}
		m.runs[k] = append(m.runs[k], &Run{A: o.a, B: o.b, From: o.from, To: to, Lo: lo, Hi: hi, Sig: sg})
		return nil
	}

	for k := 0; k < s-1; k++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, pos := range m.plan.Swaps[k] {
			// A swap at pos disturbs slots pos, pos+1, pos+2.
			for _, sl := range []int{pos, pos + 1, pos + 2} {
				if err := sign(slots[sl], k); err != nil {
					return err
				}
			}
			perm[pos], perm[pos+1] = perm[pos+1], perm[pos]
			for _, sl := range []int{pos, pos + 1, pos + 2} {
				slots[sl] = open{a: entry(sl - 1), b: entry(sl), from: k + 1}
			}
		}
	}
	for i := 0; i <= n; i++ {
		if err := sign(slots[i], s-1); err != nil {
			return err
		}
	}
	return nil
}

// findRun locates the signed run covering subdomain sub for the adjacency
// (a,b), if one exists. Every binary-search probe examines one run cell
// and is counted — the per-pair lookup cost of assembling a mesh VO.
func (m *Mesh) findRun(a, b, sub int, ctr *metrics.Counter) (*Run, bool) {
	rs := m.runs[pairKey{a, b}]
	i := sort.Search(len(rs), func(i int) bool {
		ctr.AddCells(1)
		return rs[i].To >= sub
	})
	if i < len(rs) && rs[i].From <= sub {
		return rs[i], true
	}
	return nil, false
}
