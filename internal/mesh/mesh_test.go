package mesh

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/sig"
)

var testSigner = func() sig.Signer {
	s, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		panic(err)
	}
	return s
}()

func lineTable(t testing.TB, n int, seed int64) record.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{
			ID:    uint64(i + 1),
			Attrs: []float64{rng.NormFloat64(), rng.NormFloat64() * 3},
		}
	}
	tbl, err := record.NewTable(record.Schema{
		Name:    "lines",
		Columns: []record.Column{{Name: "slope"}, {Name: "intercept"}},
	}, recs)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func buildMesh(t testing.TB, tbl record.Table) *Mesh {
	t.Helper()
	m, err := Build(tbl, Params{
		Signer:   testSigner,
		Domain:   geometry.MustBox([]float64{-1}, []float64{1}),
		Template: funcs.AffineLine(0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestHonestRoundTrip(t *testing.T) {
	tbl := lineTable(t, 40, 1)
	m := buildMesh(t, tbl)
	pub := m.Public()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		x := geometry.Point{rng.Float64()*2 - 1}
		for _, q := range []query.Query{
			query.NewTopK(x, 1+rng.Intn(6)),
			query.NewBottomK(x, 1+rng.Intn(6)),
			query.NewRange(x, -2, 2),
			query.NewRange(x, 50, 60),
			query.NewKNN(x, 1+rng.Intn(6), rng.NormFloat64()),
		} {
			ans, err := m.Process(q, nil)
			if err != nil {
				t.Fatalf("%v: Process: %v", q.Kind, err)
			}
			if err := Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
				t.Fatalf("%v: honest answer rejected: %v", q.Kind, err)
			}
		}
	}
}

func TestResultsMatchOracle(t *testing.T) {
	tbl := lineTable(t, 35, 3)
	m := buildMesh(t, tbl)
	tpl := funcs.AffineLine(0, 1)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		x := geometry.Point{rng.Float64()*2 - 1}
		for _, q := range []query.Query{
			query.NewTopK(x, 4),
			query.NewRange(x, -1, 1),
			query.NewKNN(x, 3, 0),
		} {
			ans, err := m.Process(q, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := query.Exec(tbl, tpl, q)
			if err != nil {
				t.Fatal(err)
			}
			if len(ans.Records) != len(want.Records) {
				t.Fatalf("%v: got %d records, oracle %d", q.Kind, len(ans.Records), len(want.Records))
			}
			for i := range want.Records {
				if ans.Records[i].ID != want.Records[i].ID {
					a := tpl.Interpret(0, ans.Records[i]).Eval(q.X)
					if a != want.Scores[i] {
						t.Fatalf("%v: record %d differs from oracle", q.Kind, i)
					}
				}
			}
		}
	}
}

func TestMeshAgreesWithIFMH(t *testing.T) {
	tbl := lineTable(t, 30, 5)
	m := buildMesh(t, tbl)
	tree, err := core.Build(tbl, core.Params{
		Mode:     core.OneSignature,
		Signer:   testSigner,
		Domain:   geometry.MustBox([]float64{-1}, []float64{1}),
		Template: funcs.AffineLine(0, 1),
		Shuffle:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSubdomains() != tree.NumSubdomains() {
		t.Fatalf("mesh has %d subdomains, IFMH %d", m.NumSubdomains(), tree.NumSubdomains())
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		q := query.NewTopK(geometry.Point{rng.Float64()*2 - 1}, 3)
		a1, err := m.Process(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := tree.Process(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(a1.Records) != len(a2.Records) {
			t.Fatal("mesh and IFMH result sizes differ")
		}
		for i := range a1.Records {
			if a1.Records[i].ID != a2.Records[i].ID {
				t.Fatal("mesh and IFMH results differ")
			}
		}
	}
}

func TestSignatureCountExceedsSubdomains(t *testing.T) {
	tbl := lineTable(t, 25, 7)
	m := buildMesh(t, tbl)
	// The mesh needs at least one signature per adjacency of the base
	// list (n+1) and roughly three per crossing; it must far exceed the
	// multi-signature scheme's S signatures for the same data.
	if m.SignatureCount() <= m.NumSubdomains() {
		t.Errorf("mesh signatures = %d, subdomains = %d; expected the mesh to need more",
			m.SignatureCount(), m.NumSubdomains())
	}
	if m.SignatureCount() < m.NumRecords()+1 {
		t.Errorf("mesh signatures = %d, below the base-list minimum %d",
			m.SignatureCount(), m.NumRecords()+1)
	}
}

func TestLinearScanCost(t *testing.T) {
	tbl := lineTable(t, 50, 8)
	m := buildMesh(t, tbl)
	// A query near the right edge of the domain must scan ~all cells.
	var ctr metrics.Counter
	if _, err := m.Process(query.NewTopK(geometry.Point{0.999}, 1), &ctr); err != nil {
		t.Fatal(err)
	}
	if int(ctr.CellsVisited) < m.NumSubdomains()/2 {
		t.Errorf("right-edge query visited %d cells of %d; expected a linear scan",
			ctr.CellsVisited, m.NumSubdomains())
	}
	// A query near the left edge exits early.
	ctr.Reset()
	if _, err := m.Process(query.NewTopK(geometry.Point{-0.999}, 1), &ctr); err != nil {
		t.Fatal(err)
	}
	if ctr.CellsVisited > 5 {
		t.Errorf("left-edge query visited %d cells; expected an early exit", ctr.CellsVisited)
	}
}

func TestVerificationCountsSignatures(t *testing.T) {
	tbl := lineTable(t, 40, 9)
	m := buildMesh(t, tbl)
	pub := m.Public()
	q := query.NewTopK(geometry.Point{0.2}, 7)
	ans, err := m.Process(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ctr metrics.Counter
	if err := Verify(pub, q, ans.Records, &ans.VO, &ctr); err != nil {
		t.Fatal(err)
	}
	if ctr.SigVerifies != 8 {
		t.Errorf("verifies = %d, want |q|+1 = 8", ctr.SigVerifies)
	}
}

func TestVerifyRejectsForgeries(t *testing.T) {
	tbl := lineTable(t, 40, 10)
	m := buildMesh(t, tbl)
	pub := m.Public()
	q := query.NewRange(geometry.Point{0.3}, -1.5, 1.5)
	ans, err := m.Process(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Records) < 3 {
		t.Fatalf("want a non-trivial window, got %d", len(ans.Records))
	}

	cases := []struct {
		name   string
		mutate func(*Answer)
	}{
		{"forged attribute", func(a *Answer) { a.Records[1].Attrs[1] += 1 }},
		{"dropped middle record", func(a *Answer) {
			a.Records = append(a.Records[:1], a.Records[2:]...)
			a.VO.Pairs = append(a.VO.Pairs[:1], a.VO.Pairs[2:]...)
		}},
		{"swapped records", func(a *Answer) {
			a.Records[0], a.Records[1] = a.Records[1], a.Records[0]
		}},
		{"corrupt signature", func(a *Answer) { a.VO.Pairs[0].Sig[3] ^= 1 }},
		{"run interval stretched", func(a *Answer) { a.VO.Pairs[0].Lo -= 0.5 }},
		{"boundary forged", func(a *Answer) { a.VO.Left.Rec.Attrs[0] += 2 }},
		{"pair proof truncated", func(a *Answer) {
			a.Records = a.Records[:len(a.Records)-1]
			a.VO.Pairs = a.VO.Pairs[:len(a.VO.Pairs)-1]
			// The last remaining pair no longer reaches the right
			// boundary record, so chain verification must fail.
		}},
	}
	for _, tc := range cases {
		bad := ans.Clone()
		tc.mutate(bad)
		if err := Verify(pub, q, bad.Records, &bad.VO, nil); !errors.Is(err, core.ErrVerification) {
			t.Errorf("%s: accepted (%v)", tc.name, err)
		}
	}
}

func TestVerifyRejectsWrongSubdomainReplay(t *testing.T) {
	tbl := lineTable(t, 40, 11)
	m := buildMesh(t, tbl)
	pub := m.Public()
	q1 := query.NewTopK(geometry.Point{-0.9}, 3)
	ans, err := m.Process(q1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying the answer for a far-away function input must fail the
	// run-interval checks (different subdomain, different order).
	q2 := query.NewTopK(geometry.Point{0.9}, 3)
	if err := Verify(pub, q2, ans.Records, &ans.VO, nil); !errors.Is(err, core.ErrVerification) {
		t.Errorf("cross-subdomain replay accepted (%v)", err)
	}
}

func TestBuildValidation(t *testing.T) {
	tbl := lineTable(t, 5, 12)
	if _, err := Build(tbl, Params{Domain: geometry.MustBox([]float64{-1}, []float64{1}), Template: funcs.AffineLine(0, 1)}); err == nil {
		t.Error("nil signer accepted")
	}
	if _, err := Build(tbl, Params{Signer: testSigner, Domain: geometry.MustBox([]float64{-1, -1}, []float64{1, 1}), Template: funcs.ScalarProduct(2)}); err == nil {
		t.Error("multivariate mesh accepted")
	}
	if _, err := Build(record.Table{Schema: tbl.Schema}, Params{Signer: testSigner, Domain: geometry.MustBox([]float64{-1}, []float64{1}), Template: funcs.AffineLine(0, 1)}); err == nil {
		t.Error("empty table accepted")
	}
}

func TestEmptyRangeResult(t *testing.T) {
	tbl := lineTable(t, 20, 13)
	m := buildMesh(t, tbl)
	pub := m.Public()
	q := query.NewRange(geometry.Point{0}, 1e6, 2e6)
	ans, err := m.Process(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Records) != 0 || len(ans.VO.Pairs) != 1 {
		t.Fatalf("empty result: %d records, %d pairs", len(ans.Records), len(ans.VO.Pairs))
	}
	if err := Verify(pub, q, ans.Records, &ans.VO, nil); err != nil {
		t.Fatalf("empty result rejected: %v", err)
	}
}

// TestConcurrentMeshQueries exercises the shared sweep cursor from many
// goroutines (run with -race); results must match the single-threaded
// answers.
func TestConcurrentMeshQueries(t *testing.T) {
	tbl := lineTable(t, 40, 14)
	m := buildMesh(t, tbl)
	pub := m.Public()
	qs := make([]query.Query, 20)
	want := make([][]uint64, len(qs))
	rng := rand.New(rand.NewSource(15))
	for i := range qs {
		qs[i] = query.NewTopK(geometry.Point{rng.Float64()*2 - 1}, 3)
		ans, err := m.Process(qs[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range ans.Records {
			want[i] = append(want[i], r.ID)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range qs {
				j := (i + worker*3) % len(qs)
				ans, err := m.Process(qs[j], nil)
				if err != nil {
					errs <- err
					return
				}
				if err := Verify(pub, qs[j], ans.Records, &ans.VO, nil); err != nil {
					errs <- err
					return
				}
				for k, r := range ans.Records {
					if r.ID != want[j][k] {
						errs <- fmt.Errorf("concurrent mesh result differs")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
