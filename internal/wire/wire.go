// Package wire provides the deterministic binary encoding of query
// answers (result + verification object) for both the IFMH-tree and the
// signature mesh. The paper's communication-overhead experiments (Fig 8)
// measure exactly these bytes, so the format is explicit and compact
// rather than reflective: every field is written big-endian with
// length-prefixed variable parts.
//
// Transport-level outcomes ride HTTP status codes, never the frames:
// 400 for a frame that does not decode, 413 past the size cap, 422 for
// a frame that decodes but cannot be served, 429 for a request shed by
// admission control (the ErrOverload sentinel; see docs/WIRE.md).
// Per-query refusals travel inside a 200 frame via the status byte.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// writer appends primitives to a byte slice.
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) bool(v bool)  { w.u8(map[bool]uint8{false: 0, true: 1}[v]) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// reader consumes primitives from a byte slice, remembering the first
// error so call sites stay linear.
type reader struct {
	buf []byte
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated %s", what)
	}
}

func (r *reader) u8(what string) uint8 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 1 {
		r.fail(what)
		return 0
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

func (r *reader) bool(what string) bool { return r.u8(what) == 1 }

func (r *reader) u32(what string) uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 4 {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}

func (r *reader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

func (r *reader) f64(what string) float64 { return math.Float64frombits(r.u64(what)) }

func (r *reader) bytes(what string) []byte {
	n := int(r.u32(what))
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf) < n {
		r.fail(what)
		return nil
	}
	out := append([]byte(nil), r.buf[:n]...)
	r.buf = r.buf[n:]
	return out
}

// count reads a u32 element count and sanity-bounds it against the
// remaining buffer (each element needs at least min bytes) so a forged
// count cannot drive huge allocations.
func (r *reader) count(what string, min int) int {
	n := int(r.u32(what))
	if r.err != nil {
		return 0
	}
	if n < 0 || (min > 0 && n > len(r.buf)/min+1) {
		r.fail(what + " count")
		return 0
	}
	return n
}

// nonneg reads a u32 field that lands in an int (counts, offsets) and
// bounds it to MaxInt32 so the conversion can never go negative on a
// 32-bit int.
func (r *reader) nonneg(what string) int {
	v := r.u32(what)
	if v > math.MaxInt32 {
		r.fail(what)
		return 0
	}
	return int(v)
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf))
	}
	return nil
}
