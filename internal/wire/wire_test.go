package wire

import (
	"math/rand"
	"testing"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/mesh"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/sig"
)

var testSigner = func() sig.Signer {
	s, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		panic(err)
	}
	return s
}()

func lineTable(t testing.TB, n int, seed int64) record.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{
			ID:      uint64(i + 1),
			Attrs:   []float64{rng.NormFloat64(), rng.NormFloat64()},
			Payload: []byte{byte(i)},
		}
	}
	tbl, err := record.NewTable(record.Schema{
		Name:    "lines",
		Columns: []record.Column{{Name: "slope"}, {Name: "intercept"}},
	}, recs)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func ifmhAnswers(t *testing.T, mode core.Mode) []*core.Answer {
	t.Helper()
	tbl := lineTable(t, 25, int64(mode)+1)
	tree, err := core.Build(tbl, core.Params{
		Mode:     mode,
		Signer:   testSigner,
		Domain:   geometry.MustBox([]float64{-1}, []float64{1}),
		Template: funcs.AffineLine(0, 1),
		Shuffle:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []*core.Answer
	for _, q := range []query.Query{
		query.NewTopK(geometry.Point{0.4}, 3),
		query.NewRange(geometry.Point{-0.2}, -1, 1),
		query.NewRange(geometry.Point{0.1}, 1e6, 2e6), // empty
		query.NewKNN(geometry.Point{0.7}, 4, 0),
	} {
		a, err := tree.Process(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, a)
	}
	return out
}

func answersEqualIFMH(a, b *core.Answer) bool {
	if len(a.Records) != len(b.Records) || a.VO.Mode != b.VO.Mode ||
		a.VO.ListLen != b.VO.ListLen || a.VO.Start != b.VO.Start ||
		a.VO.Left.Kind != b.VO.Left.Kind || a.VO.Right.Kind != b.VO.Right.Kind ||
		len(a.VO.FProof.Hashes) != len(b.VO.FProof.Hashes) ||
		len(a.VO.Path) != len(b.VO.Path) || len(a.VO.Ineqs) != len(b.VO.Ineqs) ||
		string(a.VO.Signature) != string(b.VO.Signature) {
		return false
	}
	for i := range a.Records {
		if !a.Records[i].Equal(b.Records[i]) {
			return false
		}
	}
	for i := range a.VO.FProof.Hashes {
		if a.VO.FProof.Hashes[i] != b.VO.FProof.Hashes[i] {
			return false
		}
	}
	for i := range a.VO.Path {
		if a.VO.Path[i].TookAbove != b.VO.Path[i].TookAbove ||
			a.VO.Path[i].Sibling != b.VO.Path[i].Sibling {
			return false
		}
	}
	return true
}

func TestIFMHRoundTrip(t *testing.T) {
	for _, mode := range []core.Mode{core.OneSignature, core.MultiSignature} {
		for i, a := range ifmhAnswers(t, mode) {
			enc := EncodeIFMH(a)
			got, err := DecodeIFMH(enc)
			if err != nil {
				t.Fatalf("%v answer %d: decode: %v", mode, i, err)
			}
			if !answersEqualIFMH(a, got) {
				t.Fatalf("%v answer %d: round trip changed the answer", mode, i)
			}
			// Deterministic encoding.
			if string(EncodeIFMH(got)) != string(enc) {
				t.Fatalf("%v answer %d: re-encode differs", mode, i)
			}
		}
	}
}

func TestDecodedAnswerStillVerifies(t *testing.T) {
	tbl := lineTable(t, 30, 5)
	tree, err := core.Build(tbl, core.Params{
		Mode:     core.MultiSignature,
		Signer:   testSigner,
		Domain:   geometry.MustBox([]float64{-1}, []float64{1}),
		Template: funcs.AffineLine(0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	pub := tree.Public()
	q := query.NewTopK(geometry.Point{0.3}, 5)
	a, err := tree.Process(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeIFMH(EncodeIFMH(a))
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(pub, q, got.Records, &got.VO, nil); err != nil {
		t.Fatalf("decoded answer rejected: %v", err)
	}
}

func TestMeshRoundTrip(t *testing.T) {
	tbl := lineTable(t, 25, 7)
	m, err := mesh.Build(tbl, mesh.Params{
		Signer:   testSigner,
		Domain:   geometry.MustBox([]float64{-1}, []float64{1}),
		Template: funcs.AffineLine(0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	pub := m.Public()
	for _, q := range []query.Query{
		query.NewTopK(geometry.Point{0.4}, 3),
		query.NewRange(geometry.Point{-0.6}, -2, 2),
		query.NewKNN(geometry.Point{0.2}, 2, 1),
	} {
		a, err := m.Process(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		enc := EncodeMesh(a)
		got, err := DecodeMesh(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", q.Kind, err)
		}
		if string(EncodeMesh(got)) != string(enc) {
			t.Fatalf("%v: re-encode differs", q.Kind)
		}
		if err := mesh.Verify(pub, q, got.Records, &got.VO, nil); err != nil {
			t.Fatalf("%v: decoded mesh answer rejected: %v", q.Kind, err)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	a := ifmhAnswers(t, core.OneSignature)[0]
	enc := EncodeIFMH(a)
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := DecodeIFMH(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage is also rejected.
	if _, err := DecodeIFMH(append(enc, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Wrong magic.
	bad := append([]byte(nil), enc...)
	bad[0] = 0x77
	if _, err := DecodeIFMH(bad); err == nil {
		t.Error("wrong magic accepted")
	}
}

func TestVOSizeExcludesResult(t *testing.T) {
	answers := ifmhAnswers(t, core.OneSignature)
	for i, a := range answers {
		vs := VOSizeIFMH(a)
		if vs <= 0 {
			t.Fatalf("answer %d: VO size %d", i, vs)
		}
		if vs >= len(EncodeIFMH(a)) {
			t.Fatalf("answer %d: VO size %d not smaller than full answer", i, vs)
		}
	}
	// VO size is independent of the records' payload size: growing the
	// result must not grow the VO metric (only boundary records count).
	small := answers[2] // empty result
	large := answers[1] // range with records
	_ = small
	_ = large
}

func TestVOSizeMeshGrowsWithResult(t *testing.T) {
	tbl := lineTable(t, 40, 9)
	m, err := mesh.Build(tbl, mesh.Params{
		Signer:   testSigner,
		Domain:   geometry.MustBox([]float64{-1}, []float64{1}),
		Template: funcs.AffineLine(0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	a3, err := m.Process(query.NewTopK(geometry.Point{0.1}, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	a20, err := m.Process(query.NewTopK(geometry.Point{0.1}, 20), nil)
	if err != nil {
		t.Fatal(err)
	}
	if VOSizeMesh(a20) <= VOSizeMesh(a3) {
		t.Errorf("mesh VO size should grow with |q|: %d vs %d", VOSizeMesh(a20), VOSizeMesh(a3))
	}
}
