package wire

import (
	"fmt"

	"aqverify/internal/core"
	"aqverify/internal/geometry"
	"aqverify/internal/hashing"
	"aqverify/internal/mesh"
	"aqverify/internal/query"
	"aqverify/internal/record"
)

// Format magic bytes distinguishing the two answer encodings.
const (
	magicIFMH = 0xA1
	magicMesh = 0xA2
)

// EncodeQuery serializes one query for network transports.
func EncodeQuery(q query.Query) []byte {
	w := &writer{}
	encodeQuery(w, q)
	return w.buf
}

// DecodeQuery parses a query serialized by EncodeQuery.
func DecodeQuery(b []byte) (query.Query, error) {
	r := &reader{buf: b}
	q := decodeQuery(r)
	if err := r.done(); err != nil {
		return query.Query{}, err
	}
	return q, nil
}

func encodeQuery(w *writer, q query.Query) {
	w.u8(uint8(q.Kind))
	w.u32(uint32(len(q.X)))
	for _, v := range q.X {
		w.f64(v)
	}
	w.u32(uint32(q.K))
	w.f64(q.L)
	w.f64(q.U)
	w.f64(q.Y)
}

func decodeQuery(r *reader) query.Query {
	var q query.Query
	q.Kind = query.Kind(r.u8("query kind"))
	n := r.count("query vars", 8)
	q.X = make(geometry.Point, n)
	for i := range q.X {
		q.X[i] = r.f64("query var")
	}
	q.K = r.nonneg("query k")
	q.L = r.f64("query l")
	q.U = r.f64("query u")
	q.Y = r.f64("query y")
	return q
}

func encodeRecords(w *writer, recs []record.Record) {
	w.u32(uint32(len(recs)))
	for _, rec := range recs {
		w.bytes(rec.Encode(nil))
	}
}

func decodeRecords(r *reader) []record.Record {
	n := r.count("records", 5)
	out := make([]record.Record, 0, n)
	for i := 0; i < n; i++ {
		b := r.bytes("record")
		if r.err != nil {
			return nil
		}
		rec, rest, err := record.Decode(b)
		if err != nil || len(rest) != 0 {
			r.err = fmt.Errorf("wire: record %d: malformed", i)
			return nil
		}
		out = append(out, rec)
	}
	return out
}

func encodeBoundary(w *writer, b core.Boundary) {
	w.u8(uint8(b.Kind))
	if b.Kind == core.BoundaryRecord {
		w.bytes(b.Rec.Encode(nil))
	}
}

func decodeBoundary(r *reader) core.Boundary {
	var b core.Boundary
	b.Kind = core.BoundaryKind(r.u8("boundary kind"))
	if b.Kind == core.BoundaryRecord {
		raw := r.bytes("boundary record")
		if r.err != nil {
			return b
		}
		rec, rest, err := record.Decode(raw)
		if err != nil || len(rest) != 0 {
			r.err = fmt.Errorf("wire: boundary record malformed")
			return b
		}
		b.Rec = rec
	}
	return b
}

func encodeDigests(w *writer, ds []hashing.Digest) {
	w.u32(uint32(len(ds)))
	for _, d := range ds {
		w.buf = append(w.buf, d[:]...)
	}
}

func decodeDigests(r *reader) []hashing.Digest {
	n := r.count("digests", hashing.Size)
	out := make([]hashing.Digest, 0, n)
	for i := 0; i < n; i++ {
		if len(r.buf) < hashing.Size {
			r.fail("digest")
			return nil
		}
		var d hashing.Digest
		copy(d[:], r.buf[:hashing.Size])
		r.buf = r.buf[hashing.Size:]
		out = append(out, d)
	}
	return out
}

// EncodeIFMH serializes an IFMH answer. Its length is the communication
// cost of the one-signature / multi-signature approaches.
func EncodeIFMH(a *core.Answer) []byte {
	w := &writer{}
	w.u8(magicIFMH)
	encodeQuery(w, a.Query)
	encodeRecords(w, a.Records)
	w.u8(uint8(a.VO.Mode))
	w.u32(uint32(a.VO.ListLen))
	w.u32(uint32(a.VO.Start))
	encodeBoundary(w, a.VO.Left)
	encodeBoundary(w, a.VO.Right)
	encodeDigests(w, a.VO.FProof.Hashes)
	w.u32(uint32(len(a.VO.Path)))
	for _, st := range a.VO.Path {
		w.bytes(st.Hp.Encode(nil))
		w.bool(st.TookAbove)
		w.buf = append(w.buf, st.Sibling[:]...)
	}
	w.bytes(geometry.EncodeHalfspaces(nil, a.VO.Ineqs))
	w.bytes(a.VO.Signature)
	return w.buf
}

// DecodeIFMH parses an IFMH answer.
func DecodeIFMH(b []byte) (*core.Answer, error) {
	r := &reader{buf: b}
	if r.u8("magic") != magicIFMH {
		return nil, fmt.Errorf("wire: not an IFMH answer")
	}
	a := &core.Answer{}
	a.Query = decodeQuery(r)
	a.Records = decodeRecords(r)
	a.VO.Mode = core.Mode(r.u8("mode"))
	a.VO.ListLen = r.nonneg("list len")
	a.VO.Start = r.nonneg("start")
	a.VO.Left = decodeBoundary(r)
	a.VO.Right = decodeBoundary(r)
	a.VO.FProof.Hashes = decodeDigests(r)
	np := r.count("path", 1+hashing.Size)
	for i := 0; i < np; i++ {
		var st core.PathStep
		raw := r.bytes("path hyperplane")
		if r.err == nil {
			hp, rest, err := geometry.DecodeHyperplane(raw)
			if err != nil || len(rest) != 0 {
				r.err = fmt.Errorf("wire: path step %d hyperplane malformed", i)
			}
			st.Hp = hp
		}
		st.TookAbove = r.bool("path dir")
		if r.err == nil {
			if len(r.buf) < hashing.Size {
				r.fail("path sibling")
			} else {
				copy(st.Sibling[:], r.buf[:hashing.Size])
				r.buf = r.buf[hashing.Size:]
			}
		}
		a.VO.Path = append(a.VO.Path, st)
	}
	rawIneqs := r.bytes("ineqs")
	if r.err == nil {
		// The field always carries a halfspace-list encoding (a zero
		// count for the one-signature mode); rejecting anything shorter
		// keeps the codec canonical — every accepted answer re-encodes
		// to identical bytes.
		hss, rest, err := geometry.DecodeHalfspaces(rawIneqs)
		if err != nil || len(rest) != 0 {
			r.err = fmt.Errorf("wire: inequality set malformed")
		}
		if len(hss) > 0 {
			a.VO.Ineqs = hss
		}
	}
	a.VO.Signature = r.bytes("signature")
	if err := r.done(); err != nil {
		return nil, err
	}
	return a, nil
}

// EncodeMesh serializes a signature-mesh answer.
func EncodeMesh(a *mesh.Answer) []byte {
	w := &writer{}
	w.u8(magicMesh)
	encodeQuery(w, a.Query)
	encodeRecords(w, a.Records)
	w.u32(uint32(a.VO.ListLen))
	encodeBoundary(w, a.VO.Left)
	encodeBoundary(w, a.VO.Right)
	w.u32(uint32(len(a.VO.Pairs)))
	for _, p := range a.VO.Pairs {
		w.f64(p.Lo)
		w.f64(p.Hi)
		w.bytes(p.Sig)
	}
	return w.buf
}

// DecodeMesh parses a signature-mesh answer.
func DecodeMesh(b []byte) (*mesh.Answer, error) {
	r := &reader{buf: b}
	if r.u8("magic") != magicMesh {
		return nil, fmt.Errorf("wire: not a mesh answer")
	}
	a := &mesh.Answer{}
	a.Query = decodeQuery(r)
	a.Records = decodeRecords(r)
	a.VO.ListLen = r.nonneg("list len")
	a.VO.Left = decodeBoundary(r)
	a.VO.Right = decodeBoundary(r)
	np := r.count("pairs", 20)
	for i := 0; i < np; i++ {
		var p mesh.PairProof
		p.Lo = r.f64("pair lo")
		p.Hi = r.f64("pair hi")
		p.Sig = r.bytes("pair sig")
		a.VO.Pairs = append(a.VO.Pairs, p)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return a, nil
}

// VOSizeIFMH returns the byte size of the verification object alone
// (excluding the query echo and the result records), which is the
// paper's Fig 8 metric.
func VOSizeIFMH(a *core.Answer) int {
	full := len(EncodeIFMH(a))
	w := &writer{}
	encodeQuery(w, a.Query)
	encodeRecords(w, a.Records)
	return full - len(w.buf) - 1
}

// VOSizeMesh returns the mesh verification object's byte size.
func VOSizeMesh(a *mesh.Answer) int {
	full := len(EncodeMesh(a))
	w := &writer{}
	encodeQuery(w, a.Query)
	encodeRecords(w, a.Records)
	return full - len(w.buf) - 1
}
