package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Streaming answer frames: the response body of POST /query/stream.
// Where the answer batch (0xB5) buffers every outcome into one frame,
// the stream pipelines them — a header frame announcing the item count,
// then one self-delimiting item frame per outcome *in completion
// order*, closed by a trailer frame whose tally makes truncation
// detectable (an HTTP body can end cleanly mid-stream when the server
// dies; a batch frame cannot lose its tail without failing its length
// checks). Each item carries the original batch index because arrival
// order is completion order, not request order. The item's status,
// shard, epoch and payload encoding is shared with the answer batch
// (writer.answerItem); 0xB4 was the stream layout without the per-item
// epoch word and is retired — refused by name, never misparsed. See
// docs/WIRE.md for the byte layouts.
const magicAnswerStream = 0xB6

// Stream frame kinds, following the header.
const (
	frameStreamItem    = 0x01
	frameStreamTrailer = 0x02
)

// maxStreamPayload bounds one streamed item's payload so a forged
// length prefix cannot drive a huge allocation; it matches the largest
// single answer the HTTP client will buffer.
const maxStreamPayload = 64 << 20

// StreamItem is one decoded item frame: the outcome plus the index it
// had in the query batch that opened the stream.
type StreamItem struct {
	Index int
	Ans   BatchAnswer
}

// EncodeStreamHeader frames the stream opening: magic and the item
// count the stream promises to deliver.
func EncodeStreamHeader(count int) []byte {
	w := &writer{}
	w.u8(magicAnswerStream)
	w.u32(uint32(count))
	return w.buf
}

// EncodeStreamItem frames one outcome as it completes. The index is the
// item's position in the query batch; status, shard, epoch and payload
// use the answer-batch item layout. An out-of-range index or unknown
// status is a programming error and fails the encode.
func EncodeStreamItem(index int, it BatchAnswer) ([]byte, error) {
	if index < 0 {
		return nil, fmt.Errorf("wire: stream item index %d is negative", index)
	}
	w := &writer{}
	w.u8(frameStreamItem)
	w.u32(uint32(index))
	if err := w.answerItem(it); err != nil {
		return nil, fmt.Errorf("wire: stream item %d: %w", index, err)
	}
	return w.buf, nil
}

// EncodeStreamTrailer closes the stream: the tally must equal the
// number of item frames written, which a complete stream makes equal to
// the header count.
func EncodeStreamTrailer(tally int) []byte {
	w := &writer{}
	w.u8(frameStreamTrailer)
	w.u32(uint32(tally))
	return w.buf
}

// StreamReader decodes an answer stream incrementally off an io.Reader
// — frame by frame as bytes arrive, never buffering the body. It is
// strict: item indexes must be unique and inside the header count, the
// trailer must tally exactly the delivered items, every announced item
// must arrive before the trailer, and nothing may follow it. Any bare
// EOF before the trailer — the wire shape of a mid-stream server death
// — is an error, so a consumer always knows whether the stream it read
// was the stream the server meant to send.
type StreamReader struct {
	r        io.Reader
	count    int
	seen     []bool
	received int
	done     bool
	err      error
}

// NewStreamReader consumes and validates the header frame, leaving the
// reader positioned at the first item.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	sr := &StreamReader{r: r}
	var hdr [5]byte
	if err := sr.readFull(hdr[:], "stream header"); err != nil {
		return nil, err
	}
	switch hdr[0] {
	case magicAnswerStream:
	case magicAnswerStreamV1:
		return nil, fmt.Errorf("wire: answer stream uses the retired pre-epoch layout (0xB4); upgrade the server")
	default:
		return nil, fmt.Errorf("wire: not an answer stream")
	}
	// Bound the u32 before converting: on a 32-bit platform a huge
	// count would wrap negative and slip past the limit check.
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxBatchItems {
		return nil, fmt.Errorf("wire: stream of %d answers exceeds the limit", n)
	}
	sr.count = int(n)
	sr.seen = make([]bool, n)
	return sr, nil
}

// Count returns the item count the header announced.
func (sr *StreamReader) Count() int { return sr.count }

// Next decodes the next item frame, blocking until its bytes arrive.
// It returns io.EOF once the trailer has been consumed and validated —
// every announced item was delivered exactly once — and any other error
// is sticky: truncation, a duplicate or out-of-range index, an unknown
// frame kind or status, or a trailer whose tally disagrees.
func (sr *StreamReader) Next() (StreamItem, error) {
	if sr.err != nil {
		return StreamItem{}, sr.err
	}
	if sr.done {
		return StreamItem{}, io.EOF
	}
	item, err := sr.next()
	if err != nil && !errors.Is(err, io.EOF) {
		sr.err = err
	}
	return item, err
}

func (sr *StreamReader) next() (StreamItem, error) {
	var kind [1]byte
	if err := sr.readFull(kind[:], "stream frame"); err != nil {
		return StreamItem{}, err
	}
	switch kind[0] {
	case frameStreamItem:
		return sr.readItem()
	case frameStreamTrailer:
		tally, err := sr.readU32("stream trailer")
		if err != nil {
			return StreamItem{}, err
		}
		if tally != uint32(sr.received) {
			return StreamItem{}, fmt.Errorf("wire: stream trailer tallies %d items, %d were delivered", tally, sr.received)
		}
		if sr.received != sr.count {
			return StreamItem{}, fmt.Errorf("wire: stream closed after %d of %d items", sr.received, sr.count)
		}
		// Canonical: the trailer is the last byte of the stream.
		var b [1]byte
		if _, err := io.ReadFull(sr.r, b[:]); err == nil {
			return StreamItem{}, fmt.Errorf("wire: bytes after the stream trailer")
		} else if !errors.Is(err, io.EOF) {
			return StreamItem{}, fmt.Errorf("wire: reading past the stream trailer: %w", err)
		}
		sr.done = true
		return StreamItem{}, io.EOF
	default:
		return StreamItem{}, fmt.Errorf("wire: unknown stream frame kind %#x", kind[0])
	}
}

// readItem decodes one item frame past its kind byte.
func (sr *StreamReader) readItem() (StreamItem, error) {
	idx, err := sr.readU32("stream item index")
	if err != nil {
		return StreamItem{}, err
	}
	// Compare as u32: converting first would wrap a huge index negative
	// on a 32-bit platform and pass the bound (count is <= maxBatchItems,
	// so the conversion below cannot).
	if idx >= uint32(sr.count) {
		return StreamItem{}, fmt.Errorf("wire: stream item index %d out of range (stream of %d)", idx, sr.count)
	}
	if sr.seen[idx] {
		return StreamItem{}, fmt.Errorf("wire: stream item %d delivered twice", idx)
	}
	var head [13]byte // status byte + shard word + epoch word
	if err := sr.readFull(head[:], "stream item"); err != nil {
		return StreamItem{}, err
	}
	status := head[0]
	if status != StatusAnswer && status != StatusRefused {
		return StreamItem{}, fmt.Errorf("wire: stream item %d has unknown status %d", idx, status)
	}
	shard, err := decodeShard(binary.BigEndian.Uint32(head[1:5]))
	if err != nil {
		return StreamItem{}, fmt.Errorf("wire: stream item %d: %w", idx, err)
	}
	epoch := binary.BigEndian.Uint64(head[5:])
	plen, err := sr.readU32("stream payload length")
	if err != nil {
		return StreamItem{}, err
	}
	if plen > maxStreamPayload {
		return StreamItem{}, fmt.Errorf("wire: stream payload of %d bytes exceeds the limit", plen)
	}
	payload := make([]byte, plen)
	if err := sr.readFull(payload, "stream payload"); err != nil {
		return StreamItem{}, err
	}
	sr.seen[idx] = true
	sr.received++
	it := StreamItem{Index: int(idx)}
	if status == StatusRefused {
		it.Ans = NewRefusal(string(payload), shard).AtEpoch(epoch)
	} else {
		it.Ans = NewAnswer(payload, shard).AtEpoch(epoch)
	}
	return it, nil
}

// readFull fills buf or reports a truncation: any EOF mid-frame (bare
// or unexpected) means the stream ended before what it promised.
func (sr *StreamReader) readFull(buf []byte, what string) error {
	if _, err := io.ReadFull(sr.r, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("wire: truncated %s", what)
		}
		return fmt.Errorf("wire: reading %s: %w", what, err)
	}
	return nil
}

func (sr *StreamReader) readU32(what string) (uint32, error) {
	var b [4]byte
	if err := sr.readFull(b[:], what); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b[:]), nil
}
