package wire

import (
	"bytes"
	"io"
	"testing"
)

// encodeStream frames a complete stream — header, items in the given
// order, trailer — into one byte slice, as a well-behaved server would
// over its lifetime.
func encodeStream(t *testing.T, count int, items []StreamItem) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(EncodeStreamHeader(count))
	for _, it := range items {
		frame, err := EncodeStreamItem(it.Index, it.Ans)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	buf.Write(EncodeStreamTrailer(len(items)))
	return buf.Bytes()
}

// drainStream decodes a full stream, returning the items in arrival
// order.
func drainStream(b []byte) ([]StreamItem, error) {
	sr, err := NewStreamReader(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	var out []StreamItem
	for {
		it, err := sr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, it)
	}
}

func streamItems() []StreamItem {
	// Completion order is not index order — that is the point of the
	// stream: index 2 finished first.
	return []StreamItem{
		{Index: 2, Ans: NewAnswer([]byte{0xA1, 9, 9}, 1).AtEpoch(5)},
		{Index: 0, Ans: NewRefusal("out of domain", ShardNone)},
		{Index: 3, Ans: NewRefusal("", 0).AtEpoch(1)}, // refusal with an empty message stays a refusal
		{Index: 1, Ans: NewAnswer(nil, ShardNone).AtEpoch(1 << 33)},
	}
}

func TestStreamRoundTrip(t *testing.T) {
	items := streamItems()
	enc := encodeStream(t, len(items), items)
	got, err := drainStream(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(got), len(items))
	}
	for i, want := range items {
		g := got[i]
		if g.Index != want.Index || g.Ans.Status != want.Ans.Status ||
			g.Ans.Err != want.Ans.Err || !bytes.Equal(g.Ans.Answer, want.Ans.Answer) ||
			g.Ans.Shard != want.Ans.Shard || g.Ans.Epoch != want.Ans.Epoch {
			t.Errorf("item %d = %+v, want %+v", i, g, want)
		}
	}
	// The empty stream is valid too.
	if got, err := drainStream(encodeStream(t, 0, nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty stream: items=%d err=%v", len(got), err)
	}
}

func TestStreamRejectsTruncation(t *testing.T) {
	enc := encodeStream(t, 4, streamItems())
	// Every strict prefix must fail: a stream that ends before its
	// trailer — the wire shape of a dying server — is always an error.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := drainStream(enc[:cut]); err == nil {
			t.Fatalf("stream truncated to %d of %d bytes decoded", cut, len(enc))
		}
	}
	// Trailing bytes after the trailer are rejected.
	if _, err := drainStream(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("stream with a trailing byte decoded")
	}
}

func TestStreamRejectsBadFrames(t *testing.T) {
	items := streamItems()

	// A duplicate index: the same item delivered twice.
	if _, err := drainStream(encodeStream(t, 5, append(items, items[0]))); err == nil {
		t.Error("stream with a duplicate index decoded")
	}

	// An out-of-range index: the header promised fewer items.
	if _, err := drainStream(encodeStream(t, 3, items)); err == nil {
		t.Error("stream with an out-of-range index decoded")
	}

	// A trailer arriving before every announced item: count 5, 4 items.
	if _, err := drainStream(encodeStream(t, 5, items)); err == nil {
		t.Error("stream missing an announced item decoded")
	}

	// A trailer whose tally disagrees with the delivered items.
	var buf bytes.Buffer
	buf.Write(EncodeStreamHeader(len(items)))
	for _, it := range items {
		frame, err := EncodeStreamItem(it.Index, it.Ans)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	buf.Write(EncodeStreamTrailer(len(items) - 1))
	if _, err := drainStream(buf.Bytes()); err == nil {
		t.Error("stream with a lying trailer tally decoded")
	}

	// An unknown frame kind.
	bad := encodeStream(t, len(items), items)
	bad[5] = 0x7F // first byte after the 5-byte header is a frame kind
	if _, err := drainStream(bad); err == nil {
		t.Error("unknown frame kind decoded")
	}

	// An unknown status byte inside an item frame.
	bad = encodeStream(t, len(items), items)
	bad[10] = 9 // header (5) + kind (1) + index (4), then the status byte
	if _, err := drainStream(bad); err == nil {
		t.Error("unknown stream status decoded")
	}

	// A batch frame is not a stream.
	benc, err := EncodeAnswerBatch([]BatchAnswer{NewAnswer([]byte{1}, ShardNone)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStreamReader(bytes.NewReader(benc)); err == nil {
		t.Error("answer batch accepted as a stream header")
	}

	// A forged u32 at its maximum must be bounded *before* any int
	// conversion (it would wrap negative on a 32-bit platform): a
	// 0xFFFFFFFF header count and a 0xFFFFFFFF item index both reject.
	hugeCount := []byte{0xB6, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := NewStreamReader(bytes.NewReader(hugeCount)); err == nil {
		t.Error("stream with a 0xFFFFFFFF count accepted")
	}
	var buf2 bytes.Buffer
	buf2.Write(EncodeStreamHeader(1))
	buf2.Write([]byte{frameStreamItem, 0xFF, 0xFF, 0xFF, 0xFF})          // index
	buf2.Write([]byte{StatusAnswer, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // status, shard, epoch
	buf2.Write([]byte{0, 0, 0, 0})                                       // empty payload
	buf2.Write(EncodeStreamTrailer(1))
	if _, err := drainStream(buf2.Bytes()); err == nil {
		t.Error("stream item with a 0xFFFFFFFF index decoded")
	}
	buf2.Reset()
	buf2.Write(EncodeStreamHeader(1))
	buf2.Write([]byte{frameStreamItem, 0, 0, 0, 0})                                  // index 0
	buf2.Write([]byte{StatusAnswer, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0}) // huge shard word
	buf2.Write(EncodeStreamTrailer(1))
	if _, err := drainStream(buf2.Bytes()); err == nil {
		t.Error("stream item with a 0xFFFFFFFF shard word decoded")
	}

	// The retired pre-epoch stream layout (0xB4) is refused by name.
	if _, err := NewStreamReader(bytes.NewReader([]byte{0xB4, 0, 0, 0, 0})); err == nil {
		t.Error("retired 0xB4 stream header accepted")
	}

	// Encoder-side guards mirror the decoder.
	if _, err := EncodeStreamItem(-1, NewAnswer(nil, 0)); err == nil {
		t.Error("negative stream index encoded")
	}
	if _, err := EncodeStreamItem(0, BatchAnswer{Status: 3}); err == nil {
		t.Error("unknown stream status encoded")
	}
}

// TestStreamErrorsAreSticky pins that a failed stream stays failed: the
// consumer cannot read past a decode error into misparsed frames.
func TestStreamErrorsAreSticky(t *testing.T) {
	items := streamItems()
	enc := encodeStream(t, 3, items) // index 3 is out of range for count 3
	sr, err := NewStreamReader(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	var firstErr error
	for firstErr == nil {
		_, firstErr = sr.Next()
	}
	if firstErr == io.EOF {
		t.Fatal("invalid stream drained cleanly")
	}
	if _, err := sr.Next(); err != firstErr {
		t.Fatalf("second Next returned %v, want the sticky %v", err, firstErr)
	}
}

// TestStreamWorkedExample pins the exact bytes of the docs/WIRE.md
// worked example, so the documentation cannot drift from the codec.
func TestStreamWorkedExample(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(EncodeStreamHeader(2))
	frame, err := EncodeStreamItem(1, NewAnswer([]byte{0xA1, 0xAA, 0xBB, 0xCC}, 2).AtEpoch(3))
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(frame)
	frame, err = EncodeStreamItem(0, NewRefusal("no", ShardNone))
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(frame)
	buf.Write(EncodeStreamTrailer(2))

	want := []byte{
		// header
		0xB6, 0x00, 0x00, 0x00, 0x02,
		// item frame: index 1, answered by shard 2 at epoch 3, 4 payload bytes
		0x01, 0x00, 0x00, 0x00, 0x01,
		0x01, 0x00, 0x00, 0x00, 0x03,
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03,
		0x00, 0x00, 0x00, 0x04, 0xA1, 0xAA, 0xBB, 0xCC,
		// item frame: index 0, refused before routing (no epoch), message "no"
		0x01, 0x00, 0x00, 0x00, 0x00,
		0x00, 0x00, 0x00, 0x00, 0x00,
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0x00, 0x00, 0x00, 0x02, 0x6E, 0x6F,
		// trailer
		0x02, 0x00, 0x00, 0x00, 0x02,
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("worked example drifted:\n got % X\nwant % X", buf.Bytes(), want)
	}
	if _, err := drainStream(buf.Bytes()); err != nil {
		t.Fatalf("worked example does not decode: %v", err)
	}
}
