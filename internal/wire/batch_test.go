package wire

import (
	"bytes"
	"testing"

	"aqverify/internal/geometry"
	"aqverify/internal/query"
)

func batchQueries() []query.Query {
	return []query.Query{
		query.NewTopK(geometry.Point{0.4}, 3),
		query.NewRange(geometry.Point{-0.2}, -1, 1),
		query.NewKNN(geometry.Point{0.7}, 4, 0),
		query.NewBottomK(geometry.Point{0.1}, 2),
	}
}

func TestQueryBatchRoundTrip(t *testing.T) {
	for _, qs := range [][]query.Query{nil, batchQueries()} {
		enc := EncodeQueryBatch(qs)
		got, err := DecodeQueryBatch(enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(qs) {
			t.Fatalf("decoded %d queries, want %d", len(got), len(qs))
		}
		for i := range qs {
			if !bytes.Equal(EncodeQuery(got[i]), EncodeQuery(qs[i])) {
				t.Errorf("query %d changed across the round trip", i)
			}
		}
	}
}

func TestAnswerBatchRoundTrip(t *testing.T) {
	items := []BatchAnswer{
		NewAnswer([]byte{0xA1, 1, 2, 3}, ShardNone),
		NewRefusal("core: function input outside the owner-specified domain", ShardNone),
		NewAnswer([]byte{}, 0).AtEpoch(1),
		NewAnswer([]byte{0xA1, 9}, 3).AtEpoch(1<<40 + 7),
		NewRefusal("shard refused", 7).AtEpoch(2),
	}
	enc, err := EncodeAnswerBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAnswerBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i].Status != items[i].Status || got[i].Err != items[i].Err ||
			!bytes.Equal(got[i].Answer, items[i].Answer) || got[i].Shard != items[i].Shard ||
			got[i].Epoch != items[i].Epoch {
			t.Errorf("item %d = %+v, want %+v", i, got[i], items[i])
		}
	}
}

// TestAnswerBatchRejectsRetiredMagic pins that the retired pre-epoch
// layout (0xB3) is refused by name rather than misparsed under the
// current layout.
func TestAnswerBatchRejectsRetiredMagic(t *testing.T) {
	if _, err := DecodeAnswerBatch([]byte{0xB3, 0, 0, 0, 0}); err == nil {
		t.Fatal("retired 0xB3 answer batch decoded")
	}
}

// TestAnswerBatchEmptyRefusal is the regression for the status
// inference bug: a refusal whose error message is empty used to
// re-encode as a *successful* empty answer, because the encoder derived
// the status byte from Err != "". The status travels explicitly now.
func TestAnswerBatchEmptyRefusal(t *testing.T) {
	enc, err := EncodeAnswerBatch([]BatchAnswer{NewRefusal("", 2)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAnswerBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Status != StatusRefused {
		t.Fatalf("empty-message refusal round-tripped with status %d, want StatusRefused", got[0].Status)
	}
	if got[0].Shard != 2 || got[0].Err != "" || got[0].Answer != nil {
		t.Fatalf("empty-message refusal round-tripped as %+v", got[0])
	}
}

// TestEncodeAnswerBatchRejectsUnknownStatus pins the encoder-side
// guard: a frame the decoder would reject must never be emitted.
func TestEncodeAnswerBatchRejectsUnknownStatus(t *testing.T) {
	if _, err := EncodeAnswerBatch([]BatchAnswer{{Status: 7, Answer: []byte{1}}}); err == nil {
		t.Fatal("item with status 7 encoded")
	}
}

func TestBatchDecodeRejectsMalformed(t *testing.T) {
	qs := batchQueries()
	qenc := EncodeQueryBatch(qs)
	aenc, err := EncodeAnswerBatch([]BatchAnswer{NewAnswer([]byte{1, 2}, ShardNone), NewRefusal("x", ShardNone)})
	if err != nil {
		t.Fatal(err)
	}

	// Wrong magic: a query batch is not an answer batch and vice versa.
	if _, err := DecodeAnswerBatch(qenc); err == nil {
		t.Error("query batch decoded as answer batch")
	}
	if _, err := DecodeQueryBatch(aenc); err == nil {
		t.Error("answer batch decoded as query batch")
	}

	// Every strict prefix must fail (no silent truncation).
	for cut := 0; cut < len(qenc); cut++ {
		if _, err := DecodeQueryBatch(qenc[:cut]); err == nil {
			t.Fatalf("query batch truncated to %d bytes decoded", cut)
		}
	}
	for cut := 0; cut < len(aenc); cut++ {
		if _, err := DecodeAnswerBatch(aenc[:cut]); err == nil {
			t.Fatalf("answer batch truncated to %d bytes decoded", cut)
		}
	}

	// Trailing bytes are rejected.
	if _, err := DecodeQueryBatch(append(append([]byte(nil), qenc...), 0)); err == nil {
		t.Error("query batch with trailing byte decoded")
	}

	// An unknown status byte is rejected.
	bad, err := EncodeAnswerBatch([]BatchAnswer{NewAnswer([]byte{1}, ShardNone)})
	if err != nil {
		t.Fatal(err)
	}
	bad[5] = 7 // magic + u32 count, then the status byte
	if _, err := DecodeAnswerBatch(bad); err == nil {
		t.Error("unknown status byte decoded")
	}

	// A forged shard word at the u32 maximum is rejected before the int
	// conversion (it would wrap negative on a 32-bit platform).
	bad, err = EncodeAnswerBatch([]BatchAnswer{NewAnswer([]byte{1}, ShardNone)})
	if err != nil {
		t.Fatal(err)
	}
	copy(bad[6:10], []byte{0xFF, 0xFF, 0xFF, 0xFF}) // the shard word after the status byte
	if _, err := DecodeAnswerBatch(bad); err == nil {
		t.Error("0xFFFFFFFF shard word decoded")
	}
}
