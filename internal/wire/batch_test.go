package wire

import (
	"bytes"
	"testing"

	"aqverify/internal/geometry"
	"aqverify/internal/query"
)

func batchQueries() []query.Query {
	return []query.Query{
		query.NewTopK(geometry.Point{0.4}, 3),
		query.NewRange(geometry.Point{-0.2}, -1, 1),
		query.NewKNN(geometry.Point{0.7}, 4, 0),
		query.NewBottomK(geometry.Point{0.1}, 2),
	}
}

func TestQueryBatchRoundTrip(t *testing.T) {
	for _, qs := range [][]query.Query{nil, batchQueries()} {
		enc := EncodeQueryBatch(qs)
		got, err := DecodeQueryBatch(enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(qs) {
			t.Fatalf("decoded %d queries, want %d", len(got), len(qs))
		}
		for i := range qs {
			if !bytes.Equal(EncodeQuery(got[i]), EncodeQuery(qs[i])) {
				t.Errorf("query %d changed across the round trip", i)
			}
		}
	}
}

func TestAnswerBatchRoundTrip(t *testing.T) {
	items := []BatchAnswer{
		{Answer: []byte{0xA1, 1, 2, 3}, Shard: ShardNone},
		{Err: "core: function input outside the owner-specified domain", Shard: ShardNone},
		{Answer: []byte{}, Shard: 0},
		{Answer: []byte{0xA1, 9}, Shard: 3},
		{Err: "shard refused", Shard: 7},
	}
	got, err := DecodeAnswerBatch(EncodeAnswerBatch(items))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i].Err != items[i].Err || !bytes.Equal(got[i].Answer, items[i].Answer) ||
			got[i].Shard != items[i].Shard {
			t.Errorf("item %d = %+v, want %+v", i, got[i], items[i])
		}
	}
}

func TestBatchDecodeRejectsMalformed(t *testing.T) {
	qs := batchQueries()
	qenc := EncodeQueryBatch(qs)
	aenc := EncodeAnswerBatch([]BatchAnswer{{Answer: []byte{1, 2}}, {Err: "x"}})

	// Wrong magic: a query batch is not an answer batch and vice versa.
	if _, err := DecodeAnswerBatch(qenc); err == nil {
		t.Error("query batch decoded as answer batch")
	}
	if _, err := DecodeQueryBatch(aenc); err == nil {
		t.Error("answer batch decoded as query batch")
	}

	// Every strict prefix must fail (no silent truncation).
	for cut := 0; cut < len(qenc); cut++ {
		if _, err := DecodeQueryBatch(qenc[:cut]); err == nil {
			t.Fatalf("query batch truncated to %d bytes decoded", cut)
		}
	}
	for cut := 0; cut < len(aenc); cut++ {
		if _, err := DecodeAnswerBatch(aenc[:cut]); err == nil {
			t.Fatalf("answer batch truncated to %d bytes decoded", cut)
		}
	}

	// Trailing bytes are rejected.
	if _, err := DecodeQueryBatch(append(append([]byte(nil), qenc...), 0)); err == nil {
		t.Error("query batch with trailing byte decoded")
	}

	// An unknown status byte is rejected.
	bad := EncodeAnswerBatch([]BatchAnswer{{Answer: []byte{1}}})
	bad[5] = 7 // magic + u32 count, then the status byte
	if _, err := DecodeAnswerBatch(bad); err == nil {
		t.Error("unknown status byte decoded")
	}
}
