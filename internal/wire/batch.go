package wire

import (
	"fmt"

	"aqverify/internal/query"
)

// Batch framing magic bytes. A batch frame is a magic byte, a u32 item
// count, and length-prefixed items, mirroring the single-answer codecs:
// deterministic, big-endian, no reflection. There is exactly one valid
// layout per magic: 0xB2 was the answer-batch layout without the
// per-item shard id, 0xB3 the layout without the per-item epoch word —
// both are retired, and a frame carrying either fails decoding rather
// than being misparsed under the current layout.
const (
	magicQueryBatch  = 0xB1
	magicAnswerBatch = 0xB5

	// Retired layouts, recognized only to refuse them by name.
	magicAnswerBatchV1  = 0xB3
	magicAnswerStreamV1 = 0xB4
)

// maxBatchItems bounds the item count a decoder accepts, so a forged
// frame cannot drive huge allocations before the length checks kick in.
const maxBatchItems = 1 << 20

// ShardNone marks a batch answer that was not attributed to a shard —
// a single-tree server, or a query the router refused.
const ShardNone = -1

// Item status bytes, written to the wire verbatim. The status is
// carried explicitly rather than inferred from the error string: a
// refusal whose message happens to be empty is still a refusal, and
// inferring success from Err == "" would silently re-encode it as an
// empty answer.
const (
	// StatusRefused marks an item whose payload is the server's refusal
	// message (possibly empty).
	StatusRefused uint8 = 0
	// StatusAnswer marks an item whose payload is the query's answer
	// bytes, exactly what POST /query would have returned.
	StatusAnswer uint8 = 1
)

// BatchAnswer is one entry of a batched or streamed response: either
// the serialized answer bytes (the same bytes POST /query would have
// returned) or the server's refusal, selected by the explicit Status
// byte — use NewAnswer/NewRefusal rather than struct literals so the
// status always matches the payload. Shard records which shard of a
// domain-sharded deployment answered (ShardNone when unsharded or
// refused before routing); Epoch the publication epoch of the bundle
// that answered (0 = pre-epoch or unknown — the mesh baseline, or a
// refusal before routing). Epochs travel per item, not per frame,
// because a front-end merging per-shard streams can legitimately relay
// items from shards mid-swap at different epochs; the client, not the
// frame, decides what a torn mix means. Verification never depends on
// either word — they are observability and staleness detection.
type BatchAnswer struct {
	Status uint8
	Answer []byte
	Err    string
	Shard  int
	Epoch  uint64
}

// NewAnswer builds a successful item carrying the answer bytes.
func NewAnswer(raw []byte, shard int) BatchAnswer {
	return BatchAnswer{Status: StatusAnswer, Answer: raw, Shard: shard}
}

// NewRefusal builds a refused item carrying the server's message (which
// may legitimately be empty — the status byte, not the message, decides
// the outcome).
func NewRefusal(msg string, shard int) BatchAnswer {
	return BatchAnswer{Status: StatusRefused, Err: msg, Shard: shard}
}

// AtEpoch stamps the item with the publication epoch it was answered
// under, returning the item for chaining.
func (a BatchAnswer) AtEpoch(e uint64) BatchAnswer {
	a.Epoch = e
	return a
}

// decodeShard validates and unbiases one wire shard word (0 = ShardNone,
// k = shard k-1). The u32 is bounded before the int conversion so a
// forged word cannot wrap negative on a 32-bit platform.
func decodeShard(v uint32) (int, error) {
	if v > maxBatchItems {
		return 0, fmt.Errorf("wire: shard id %d exceeds the limit", v)
	}
	return int(v) - 1, nil
}

// EncodeQueryBatch frames many queries into one request body.
func EncodeQueryBatch(qs []query.Query) []byte {
	w := &writer{}
	w.u8(magicQueryBatch)
	w.u32(uint32(len(qs)))
	for _, q := range qs {
		w.bytes(EncodeQuery(q))
	}
	return w.buf
}

// DecodeQueryBatch parses a request body framed by EncodeQueryBatch.
func DecodeQueryBatch(b []byte) ([]query.Query, error) {
	r := &reader{buf: b}
	if r.u8("magic") != magicQueryBatch {
		return nil, fmt.Errorf("wire: not a query batch")
	}
	n := r.count("batch queries", 4)
	if n > maxBatchItems {
		return nil, fmt.Errorf("wire: batch of %d queries exceeds the limit", n)
	}
	out := make([]query.Query, 0, n)
	for i := 0; i < n; i++ {
		raw := r.bytes("batch query")
		if r.err != nil {
			break
		}
		q, err := DecodeQuery(raw)
		if err != nil {
			return nil, fmt.Errorf("wire: batch query %d: %w", i, err)
		}
		out = append(out, q)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeAnswerBatch frames many per-query outcomes into one response
// body. Each item is its explicit status byte (StatusAnswer /
// StatusRefused), a u32 shard id biased by one (0 = ShardNone, k =
// shard k-1), a u64 publication epoch (0 = pre-epoch), and the
// length-prefixed payload. An item whose status is neither constant is
// a programming error and fails the encode — a frame must never be
// emitted that the decoder would reject. See docs/WIRE.md for worked
// byte layouts.
func EncodeAnswerBatch(items []BatchAnswer) ([]byte, error) {
	w := &writer{}
	w.u8(magicAnswerBatch)
	w.u32(uint32(len(items)))
	for i, it := range items {
		if err := w.answerItem(it); err != nil {
			return nil, fmt.Errorf("wire: batch item %d: %w", i, err)
		}
	}
	return w.buf, nil
}

// answerItem appends one outcome's status byte, 1-biased shard id,
// epoch word and length-prefixed payload — the item layout the answer
// batch and the answer stream share.
func (w *writer) answerItem(it BatchAnswer) error {
	if it.Status != StatusAnswer && it.Status != StatusRefused {
		return fmt.Errorf("unknown status %d", it.Status)
	}
	w.u8(it.Status)
	if it.Shard < 0 {
		w.u32(0)
	} else {
		w.u32(uint32(it.Shard) + 1)
	}
	w.u64(it.Epoch)
	if it.Status == StatusRefused {
		w.bytes([]byte(it.Err))
	} else {
		w.bytes(it.Answer)
	}
	return nil
}

// DecodeAnswerBatch parses a response body framed by EncodeAnswerBatch.
func DecodeAnswerBatch(b []byte) ([]BatchAnswer, error) {
	r := &reader{buf: b}
	switch magic := r.u8("magic"); magic {
	case magicAnswerBatch:
	case magicAnswerBatchV1:
		return nil, fmt.Errorf("wire: answer batch uses the retired pre-epoch layout (0xB3); upgrade the server")
	default:
		return nil, fmt.Errorf("wire: not an answer batch")
	}
	n := r.count("batch answers", 17)
	if n > maxBatchItems {
		return nil, fmt.Errorf("wire: batch of %d answers exceeds the limit", n)
	}
	out := make([]BatchAnswer, 0, n)
	for i := 0; i < n; i++ {
		status := r.u8("batch status")
		shardWord := r.u32("batch shard")
		epoch := r.u64("batch epoch")
		payload := r.bytes("batch payload")
		if r.err != nil {
			break
		}
		shard, err := decodeShard(shardWord)
		if err != nil {
			return nil, fmt.Errorf("wire: batch item %d: %w", i, err)
		}
		switch status {
		case StatusRefused:
			out = append(out, NewRefusal(string(payload), shard).AtEpoch(epoch))
		case StatusAnswer:
			out = append(out, NewAnswer(payload, shard).AtEpoch(epoch))
		default:
			return nil, fmt.Errorf("wire: batch item %d has unknown status %d", i, status)
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return out, nil
}
