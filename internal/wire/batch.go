package wire

import (
	"fmt"

	"aqverify/internal/query"
)

// Batch framing magic bytes. A batch frame is a magic byte, a u32 item
// count, and length-prefixed items, mirroring the single-answer codecs:
// deterministic, big-endian, no reflection. There is exactly one valid
// layout per magic: 0xB2 was the answer-batch layout without the
// per-item shard id and is retired — a frame carrying it fails decoding
// rather than being misparsed under the current layout.
const (
	magicQueryBatch  = 0xB1
	magicAnswerBatch = 0xB3
)

// maxBatchItems bounds the item count a decoder accepts, so a forged
// frame cannot drive huge allocations before the length checks kick in.
const maxBatchItems = 1 << 20

// ShardNone marks a batch answer that was not attributed to a shard —
// a single-tree server, or a query the router refused.
const ShardNone = -1

// Item status bytes, written to the wire verbatim. The status is
// carried explicitly rather than inferred from the error string: a
// refusal whose message happens to be empty is still a refusal, and
// inferring success from Err == "" would silently re-encode it as an
// empty answer.
const (
	// StatusRefused marks an item whose payload is the server's refusal
	// message (possibly empty).
	StatusRefused uint8 = 0
	// StatusAnswer marks an item whose payload is the query's answer
	// bytes, exactly what POST /query would have returned.
	StatusAnswer uint8 = 1
)

// BatchAnswer is one entry of a batched or streamed response: either
// the serialized answer bytes (the same bytes POST /query would have
// returned) or the server's refusal, selected by the explicit Status
// byte — use NewAnswer/NewRefusal rather than struct literals so the
// status always matches the payload. Shard records which shard of a
// domain-sharded deployment answered (ShardNone when unsharded or
// refused before routing). Verification never depends on it — it is
// observability for clients and load balancers.
type BatchAnswer struct {
	Status uint8
	Answer []byte
	Err    string
	Shard  int
}

// NewAnswer builds a successful item carrying the answer bytes.
func NewAnswer(raw []byte, shard int) BatchAnswer {
	return BatchAnswer{Status: StatusAnswer, Answer: raw, Shard: shard}
}

// NewRefusal builds a refused item carrying the server's message (which
// may legitimately be empty — the status byte, not the message, decides
// the outcome).
func NewRefusal(msg string, shard int) BatchAnswer {
	return BatchAnswer{Status: StatusRefused, Err: msg, Shard: shard}
}

// decodeShard validates and unbiases one wire shard word (0 = ShardNone,
// k = shard k-1). The u32 is bounded before the int conversion so a
// forged word cannot wrap negative on a 32-bit platform.
func decodeShard(v uint32) (int, error) {
	if v > maxBatchItems {
		return 0, fmt.Errorf("wire: shard id %d exceeds the limit", v)
	}
	return int(v) - 1, nil
}

// EncodeQueryBatch frames many queries into one request body.
func EncodeQueryBatch(qs []query.Query) []byte {
	w := &writer{}
	w.u8(magicQueryBatch)
	w.u32(uint32(len(qs)))
	for _, q := range qs {
		w.bytes(EncodeQuery(q))
	}
	return w.buf
}

// DecodeQueryBatch parses a request body framed by EncodeQueryBatch.
func DecodeQueryBatch(b []byte) ([]query.Query, error) {
	r := &reader{buf: b}
	if r.u8("magic") != magicQueryBatch {
		return nil, fmt.Errorf("wire: not a query batch")
	}
	n := r.count("batch queries", 4)
	if n > maxBatchItems {
		return nil, fmt.Errorf("wire: batch of %d queries exceeds the limit", n)
	}
	out := make([]query.Query, 0, n)
	for i := 0; i < n; i++ {
		raw := r.bytes("batch query")
		if r.err != nil {
			break
		}
		q, err := DecodeQuery(raw)
		if err != nil {
			return nil, fmt.Errorf("wire: batch query %d: %w", i, err)
		}
		out = append(out, q)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeAnswerBatch frames many per-query outcomes into one response
// body. Each item is its explicit status byte (StatusAnswer /
// StatusRefused), a u32 shard id biased by one (0 = ShardNone, k =
// shard k-1), and the length-prefixed payload. An item whose status is
// neither constant is a programming error and fails the encode — a
// frame must never be emitted that the decoder would reject. See
// docs/WIRE.md for worked byte layouts.
func EncodeAnswerBatch(items []BatchAnswer) ([]byte, error) {
	w := &writer{}
	w.u8(magicAnswerBatch)
	w.u32(uint32(len(items)))
	for i, it := range items {
		if err := w.answerItem(it); err != nil {
			return nil, fmt.Errorf("wire: batch item %d: %w", i, err)
		}
	}
	return w.buf, nil
}

// answerItem appends one outcome's status byte, 1-biased shard id and
// length-prefixed payload — the item layout the answer batch and the
// answer stream share.
func (w *writer) answerItem(it BatchAnswer) error {
	if it.Status != StatusAnswer && it.Status != StatusRefused {
		return fmt.Errorf("unknown status %d", it.Status)
	}
	w.u8(it.Status)
	if it.Shard < 0 {
		w.u32(0)
	} else {
		w.u32(uint32(it.Shard) + 1)
	}
	if it.Status == StatusRefused {
		w.bytes([]byte(it.Err))
	} else {
		w.bytes(it.Answer)
	}
	return nil
}

// DecodeAnswerBatch parses a response body framed by EncodeAnswerBatch.
func DecodeAnswerBatch(b []byte) ([]BatchAnswer, error) {
	r := &reader{buf: b}
	if r.u8("magic") != magicAnswerBatch {
		return nil, fmt.Errorf("wire: not an answer batch")
	}
	n := r.count("batch answers", 9)
	if n > maxBatchItems {
		return nil, fmt.Errorf("wire: batch of %d answers exceeds the limit", n)
	}
	out := make([]BatchAnswer, 0, n)
	for i := 0; i < n; i++ {
		status := r.u8("batch status")
		shardWord := r.u32("batch shard")
		payload := r.bytes("batch payload")
		if r.err != nil {
			break
		}
		shard, err := decodeShard(shardWord)
		if err != nil {
			return nil, fmt.Errorf("wire: batch item %d: %w", i, err)
		}
		switch status {
		case StatusRefused:
			out = append(out, NewRefusal(string(payload), shard))
		case StatusAnswer:
			out = append(out, NewAnswer(payload, shard))
		default:
			return nil, fmt.Errorf("wire: batch item %d has unknown status %d", i, status)
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return out, nil
}
