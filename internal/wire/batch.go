package wire

import (
	"fmt"

	"aqverify/internal/query"
)

// Batch framing magic bytes. A batch frame is a magic byte, a u32 item
// count, and length-prefixed items, mirroring the single-answer codecs:
// deterministic, big-endian, no reflection. There is exactly one valid
// layout per magic: 0xB2 was the answer-batch layout without the
// per-item shard id and is retired — a frame carrying it fails decoding
// rather than being misparsed under the current layout.
const (
	magicQueryBatch  = 0xB1
	magicAnswerBatch = 0xB3
)

// maxBatchItems bounds the item count a decoder accepts, so a forged
// frame cannot drive huge allocations before the length checks kick in.
const maxBatchItems = 1 << 20

// ShardNone marks a batch answer that was not attributed to a shard —
// a single-tree server, or a query the router refused.
const ShardNone = -1

// BatchAnswer is one entry of a batched response: either the serialized
// answer bytes (the same bytes POST /query would have returned) or the
// server's refusal; exactly one of those two is set. Shard records which
// shard of a domain-sharded deployment answered (ShardNone when
// unsharded or refused before routing). Verification never depends on
// it — it is observability for clients and load balancers.
type BatchAnswer struct {
	Answer []byte
	Err    string
	Shard  int
}

// EncodeQueryBatch frames many queries into one request body.
func EncodeQueryBatch(qs []query.Query) []byte {
	w := &writer{}
	w.u8(magicQueryBatch)
	w.u32(uint32(len(qs)))
	for _, q := range qs {
		w.bytes(EncodeQuery(q))
	}
	return w.buf
}

// DecodeQueryBatch parses a request body framed by EncodeQueryBatch.
func DecodeQueryBatch(b []byte) ([]query.Query, error) {
	r := &reader{buf: b}
	if r.u8("magic") != magicQueryBatch {
		return nil, fmt.Errorf("wire: not a query batch")
	}
	n := r.count("batch queries", 4)
	if n > maxBatchItems {
		return nil, fmt.Errorf("wire: batch of %d queries exceeds the limit", n)
	}
	out := make([]query.Query, 0, n)
	for i := 0; i < n; i++ {
		raw := r.bytes("batch query")
		if r.err != nil {
			break
		}
		q, err := DecodeQuery(raw)
		if err != nil {
			return nil, fmt.Errorf("wire: batch query %d: %w", i, err)
		}
		out = append(out, q)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeAnswerBatch frames many per-query outcomes into one response
// body. Each item is a status byte (1 = answer, 0 = error), a u32 shard
// id biased by one (0 = ShardNone, k = shard k-1), and the
// length-prefixed payload. See docs/WIRE.md for worked byte layouts.
func EncodeAnswerBatch(items []BatchAnswer) []byte {
	w := &writer{}
	w.u8(magicAnswerBatch)
	w.u32(uint32(len(items)))
	for _, it := range items {
		if it.Err != "" {
			w.u8(0)
		} else {
			w.u8(1)
		}
		if it.Shard < 0 {
			w.u32(0)
		} else {
			w.u32(uint32(it.Shard) + 1)
		}
		if it.Err != "" {
			w.bytes([]byte(it.Err))
		} else {
			w.bytes(it.Answer)
		}
	}
	return w.buf
}

// DecodeAnswerBatch parses a response body framed by EncodeAnswerBatch.
func DecodeAnswerBatch(b []byte) ([]BatchAnswer, error) {
	r := &reader{buf: b}
	if r.u8("magic") != magicAnswerBatch {
		return nil, fmt.Errorf("wire: not an answer batch")
	}
	n := r.count("batch answers", 9)
	if n > maxBatchItems {
		return nil, fmt.Errorf("wire: batch of %d answers exceeds the limit", n)
	}
	out := make([]BatchAnswer, 0, n)
	for i := 0; i < n; i++ {
		status := r.u8("batch status")
		shard := int(r.u32("batch shard")) - 1
		payload := r.bytes("batch payload")
		if r.err != nil {
			break
		}
		switch status {
		case 0:
			out = append(out, BatchAnswer{Err: string(payload), Shard: shard})
		case 1:
			out = append(out, BatchAnswer{Answer: payload, Shard: shard})
		default:
			return nil, fmt.Errorf("wire: batch item %d has unknown status %d", i, status)
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return out, nil
}
