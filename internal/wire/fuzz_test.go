package wire

import (
	"bytes"
	"io"
	"testing"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/mesh"
	"aqverify/internal/query"
	"aqverify/internal/record"
)

// Fuzz targets: the decoders face attacker-controlled bytes by design
// (the channel is untrusted), so they must never panic and every accepted
// input must re-encode canonically. Seeds come from real answers; run
// longer campaigns with `go test -fuzz=FuzzDecodeIFMH ./internal/wire`.

func seedAnswers(f *testing.F) {
	tbl := lineTableF(f, 12, 77)
	tree, err := core.Build(tbl, core.Params{
		Mode:     core.OneSignature,
		Signer:   testSigner,
		Domain:   geometry.MustBox([]float64{-1}, []float64{1}),
		Template: funcs.AffineLine(0, 1),
	})
	if err != nil {
		f.Fatal(err)
	}
	for _, q := range []query.Query{
		query.NewTopK(geometry.Point{0.2}, 3),
		query.NewRange(geometry.Point{-0.4}, -1, 1),
		query.NewKNN(geometry.Point{0.6}, 2, 0),
	} {
		ans, err := tree.Process(q, nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(EncodeIFMH(ans))
	}
	f.Add([]byte{})
	f.Add([]byte{0xA1})
	f.Add([]byte{0xA2, 0, 0, 0})
}

func lineTableF(f *testing.F, n int, seed int64) record.Table {
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{ID: uint64(i + 1), Attrs: []float64{float64(i%5) - 2, float64(i % 3)}}
	}
	tbl, err := record.NewTable(record.Schema{
		Name:    "lines",
		Columns: []record.Column{{Name: "slope"}, {Name: "intercept"}},
	}, recs)
	if err != nil {
		f.Fatal(err)
	}
	return tbl
}

func FuzzDecodeIFMH(f *testing.F) {
	seedAnswers(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		ans, err := DecodeIFMH(data)
		if err != nil {
			return
		}
		// Accepted input must re-encode to the identical bytes: the
		// codec admits exactly one encoding per answer.
		if got := EncodeIFMH(ans); string(got) != string(data) {
			t.Fatalf("decode/encode not canonical: %d vs %d bytes", len(got), len(data))
		}
	})
}

func FuzzDecodeMesh(f *testing.F) {
	tbl := lineTableF(f, 10, 78)
	m, err := mesh.Build(tbl, mesh.Params{
		Signer:   testSigner,
		Domain:   geometry.MustBox([]float64{-1}, []float64{1}),
		Template: funcs.AffineLine(0, 1),
	})
	if err != nil {
		f.Fatal(err)
	}
	ans, err := m.Process(query.NewTopK(geometry.Point{0.1}, 3), nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(EncodeMesh(ans))
	f.Add([]byte{0xA2})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeMesh(data)
		if err != nil {
			return
		}
		if got := EncodeMesh(dec); string(got) != string(data) {
			t.Fatalf("decode/encode not canonical: %d vs %d bytes", len(got), len(data))
		}
	})
}

// FuzzDecodeAnswerStream drives the incremental stream decoder over
// attacker-controlled bytes: it must never panic, and any stream it
// drains cleanly must re-encode — header, items in arrival order,
// trailer — to the identical bytes (the codec admits exactly one
// encoding per stream).
func FuzzDecodeAnswerStream(f *testing.F) {
	mustItem := func(index int, it BatchAnswer) []byte {
		frame, err := EncodeStreamItem(index, it)
		if err != nil {
			f.Fatal(err)
		}
		return frame
	}
	stream := func(count int, frames ...[]byte) []byte {
		out := EncodeStreamHeader(count)
		for _, fr := range frames {
			out = append(out, fr...)
		}
		return out
	}
	// A complete two-item stream, completion order ≠ index order, one
	// item carrying a publication epoch.
	full := stream(2,
		mustItem(1, NewAnswer([]byte{0xA1, 1, 2}, 0).AtEpoch(4)),
		mustItem(0, NewRefusal("no", ShardNone)),
		EncodeStreamTrailer(2))
	f.Add(full)
	// Truncated trailer: the stream dies one byte into the tally.
	f.Add(full[:len(full)-3])
	// Duplicate index.
	f.Add(stream(2,
		mustItem(0, NewAnswer([]byte{0xA1}, 1)),
		mustItem(0, NewAnswer([]byte{0xA1}, 1)),
		EncodeStreamTrailer(2)))
	// Out-of-range index.
	f.Add(stream(1,
		mustItem(3, NewAnswer(nil, ShardNone)),
		EncodeStreamTrailer(1)))
	// Empty stream, bare header, wrong magic.
	f.Add(stream(0, EncodeStreamTrailer(0)))
	f.Add(EncodeStreamHeader(5))
	f.Add([]byte{0xB3, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var items []StreamItem
		for {
			it, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return
			}
			items = append(items, it)
		}
		enc := EncodeStreamHeader(sr.Count())
		for _, it := range items {
			frame, err := EncodeStreamItem(it.Index, it.Ans)
			if err != nil {
				t.Fatalf("accepted item does not re-encode: %v", err)
			}
			enc = append(enc, frame...)
		}
		enc = append(enc, EncodeStreamTrailer(len(items))...)
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode/encode not canonical: %d vs %d bytes", len(enc), len(data))
		}
	})
}

// FuzzDecodeAnswerBatch drives the epoch-carrying answer-batch decoder
// over attacker-controlled bytes: it must never panic, and any batch it
// accepts must re-encode to the identical bytes — including the
// per-item shard and epoch words.
func FuzzDecodeAnswerBatch(f *testing.F) {
	mustBatch := func(items ...BatchAnswer) []byte {
		enc, err := EncodeAnswerBatch(items)
		if err != nil {
			f.Fatal(err)
		}
		return enc
	}
	f.Add(mustBatch())
	f.Add(mustBatch(
		NewAnswer([]byte{0xA1, 1, 2, 3}, 2).AtEpoch(7),
		NewRefusal("no", ShardNone),
		NewAnswer(nil, 0).AtEpoch(1<<40)))
	// Retired pre-epoch magic, bare header, wrong magic.
	f.Add([]byte{0xB3, 0, 0, 0, 0})
	f.Add([]byte{0xB5, 0, 0, 0, 1})
	f.Add([]byte{0xB1})
	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := DecodeAnswerBatch(data)
		if err != nil {
			return
		}
		enc, err := EncodeAnswerBatch(items)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode/encode not canonical: %d vs %d bytes", len(enc), len(data))
		}
	})
}

func FuzzDecodeQuery(f *testing.F) {
	f.Add(EncodeQuery(query.NewTopK(geometry.Point{0.5}, 3)))
	f.Add(EncodeQuery(query.NewRange(geometry.Point{0.1, 0.2}, -1, 1)))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeQuery(data)
		if err != nil {
			return
		}
		if got := EncodeQuery(q); string(got) != string(data) {
			t.Fatalf("decode/encode not canonical")
		}
	})
}
