package wire

import "errors"

// ErrOverload is the typed form of an HTTP 429 on the query routes: the
// host's bounded in-flight admission gate refused the request instead
// of queuing it. Nothing about the frames changes — overload is a
// status-level outcome, rejected before any request frame is decoded —
// so the sentinel lives here with the rest of the protocol's status
// semantics. transport maps a 429 response to an error wrapping this
// sentinel, and internal/front re-exports it as front.ErrOverload; test
// with errors.Is. A shed request was never admitted: retrying against
// another replica (or after backoff) is always safe.
var ErrOverload = errors.New("wire: server overloaded; request shed, not queued")
