// Package lp implements a small dense two-phase primal simplex solver for
// linear programs over free (sign-unrestricted) variables:
//
//	maximize  C·x   subject to   A x <= B.
//
// It is the geometric workhorse behind the n-dimensional I-tree: deciding
// whether an intersection hyperplane f_i - f_j = 0 splits a subdomain
// region reduces to maximizing and minimizing (f_i - f_j)(X) over the
// region's halfspace description, and finding a witness point interior to
// a region is a Chebyshev-style slack-maximization LP.
//
// The problems this package sees are tiny (a handful of variables, tens of
// constraints), so the implementation favors clarity and robustness —
// dense tableau, Bland's anti-cycling rule — over sparse-matrix
// performance.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means the constraint set is empty.
	Infeasible
	// Unbounded means the objective is unbounded above on the feasible set.
	Unbounded
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("lp.Status(%d)", int(s))
	}
}

// Problem is a linear program: maximize C·x subject to A x <= B, with x
// free (each variable may take any real value).
type Problem struct {
	// C is the objective vector; its length fixes the variable count.
	C []float64
	// A holds one row per constraint; every row must have len(C) entries.
	A [][]float64
	// B holds the constraint right-hand sides; len(B) must equal len(A).
	B []float64
}

// Result is the outcome of Solve.
type Result struct {
	Status    Status
	X         []float64 // an optimal point when Status == Optimal
	Objective float64   // C·X when Status == Optimal
}

// eps is the absolute tolerance used for pivot and optimality tests. The
// inputs in this codebase are well-scaled (attribute values and weights of
// moderate magnitude), so an absolute tolerance suffices.
const eps = 1e-9

// maxIters bounds the pivot count as a defensive backstop; Bland's rule
// already guarantees termination.
const maxIters = 100000

// ErrTooManyIterations is returned if the pivot cap is hit, which indicates
// a numerically pathological input rather than a normal outcome.
var ErrTooManyIterations = errors.New("lp: iteration limit exceeded")

// Solve runs two-phase simplex on p. The error is non-nil only for
// malformed input or the (defensive) iteration cap; Infeasible and
// Unbounded are reported via Result.Status with a nil error.
func Solve(p Problem) (Result, error) {
	nv := len(p.C)
	m := len(p.A)
	if len(p.B) != m {
		return Result{}, fmt.Errorf("lp: %d constraint rows but %d right-hand sides", m, len(p.B))
	}
	for i, row := range p.A {
		if len(row) != nv {
			return Result{}, fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(row), nv)
		}
	}

	// Columns: [0,nv) x+, [nv,2nv) x-, [2nv,2nv+m) slacks, then one
	// artificial per negative-RHS row. RHS is stored separately.
	ncore := 2*nv + m
	type rowT struct {
		a   []float64
		rhs float64
	}
	var artRows []int
	for i := range p.A {
		if p.B[i] < 0 {
			artRows = append(artRows, i)
		}
	}
	na := len(artRows)
	ncols := ncore + na

	rows := make([][]float64, m)
	rhs := make([]float64, m)
	basis := make([]int, m)
	artOf := make(map[int]int, na) // row index -> artificial column
	for k, i := range artRows {
		artOf[i] = ncore + k
	}
	for i := 0; i < m; i++ {
		r := make([]float64, ncols)
		for j := 0; j < nv; j++ {
			r[j] = p.A[i][j]
			r[nv+j] = -p.A[i][j]
		}
		r[2*nv+i] = 1 // slack
		b := p.B[i]
		if b < 0 {
			// Negate the row so the RHS is nonnegative, then add an
			// artificial basic variable.
			for j := range r {
				r[j] = -r[j]
			}
			b = -b
			ac := artOf[i]
			r[ac] = 1
			basis[i] = ac
		} else {
			basis[i] = 2*nv + i
		}
		rows[i] = r
		rhs[i] = b
	}

	t := &tableau{rows: rows, rhs: rhs, basis: basis, ncols: ncols}

	// Phase 1: maximize -(sum of artificials); optimum 0 iff feasible.
	if na > 0 {
		obj := make([]float64, ncols)
		for _, i := range artRows {
			obj[artOf[i]] = -1
		}
		z, err := t.optimize(obj)
		if err != nil {
			return Result{}, err
		}
		if z < -eps {
			return Result{Status: Infeasible}, nil
		}
		// Drive any artificial variables still basic (at value 0) out of
		// the basis, or drop their rows if they are redundant.
		if err := t.purgeArtificials(ncore); err != nil {
			return Result{}, err
		}
		// Forbid artificial columns from re-entering by zeroing them.
		for i := range t.rows {
			for j := ncore; j < ncols; j++ {
				t.rows[i][j] = 0
			}
		}
	}

	// Phase 2: the real objective over the split variables.
	obj := make([]float64, ncols)
	for j := 0; j < nv; j++ {
		obj[j] = p.C[j]
		obj[nv+j] = -p.C[j]
	}
	z, err := t.optimize(obj)
	if err != nil {
		if errors.Is(err, errUnbounded) {
			return Result{Status: Unbounded}, nil
		}
		return Result{}, err
	}

	// Extract x = x+ - x-.
	val := make([]float64, ncols)
	for i, b := range t.basis {
		val[b] = t.rhs[i]
	}
	x := make([]float64, nv)
	for j := 0; j < nv; j++ {
		x[j] = val[j] - val[nv+j]
	}
	return Result{Status: Optimal, X: x, Objective: z}, nil
}

var errUnbounded = errors.New("lp: unbounded")

// tableau is a dense simplex tableau with the RHS held separately.
type tableau struct {
	rows  [][]float64
	rhs   []float64
	basis []int
	ncols int
}

// optimize maximizes obj over the current basic feasible solution using
// Bland's rule and returns the optimal objective value. It mutates the
// tableau in place. errUnbounded is returned when no leaving row exists.
func (t *tableau) optimize(obj []float64) (float64, error) {
	// Reduce the objective against the current basis.
	red := make([]float64, t.ncols)
	copy(red, obj)
	var z float64
	for i, b := range t.basis {
		c := red[b]
		if c == 0 {
			continue
		}
		z += c * t.rhs[i]
		for j := range red {
			red[j] -= c * t.rows[i][j]
		}
	}

	for iter := 0; iter < maxIters; iter++ {
		// Bland's rule: entering column is the lowest index with a
		// positive reduced cost.
		enter := -1
		for j := 0; j < t.ncols; j++ {
			if red[j] > eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return z, nil // optimal
		}
		// Ratio test; ties broken by the smallest basis variable index
		// (the second half of Bland's rule).
		leave := -1
		best := math.Inf(1)
		for i := range t.rows {
			a := t.rows[i][enter]
			if a <= eps {
				continue
			}
			r := t.rhs[i] / a
			if r < best-eps || (r < best+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
				best = r
				leave = i
			}
		}
		if leave < 0 {
			return 0, errUnbounded
		}
		z += red[enter] * best
		t.pivot(leave, enter)
		// Update reduced costs for the pivot.
		c := red[enter]
		if c != 0 {
			for j := range red {
				red[j] -= c * t.rows[leave][j]
			}
			red[enter] = 0
		}
	}
	return 0, ErrTooManyIterations
}

// pivot makes column enter basic in row leave via Gaussian elimination.
func (t *tableau) pivot(leave, enter int) {
	pr := t.rows[leave]
	pv := pr[enter]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	t.rhs[leave] *= inv
	pr[enter] = 1 // guard against roundoff
	for i := range t.rows {
		if i == leave {
			continue
		}
		f := t.rows[i][enter]
		if f == 0 {
			continue
		}
		row := t.rows[i]
		for j := range row {
			row[j] -= f * pr[j]
		}
		row[enter] = 0
		t.rhs[i] -= f * t.rhs[leave]
	}
	t.basis[leave] = enter
}

// purgeArtificials pivots out artificial variables that remain basic at
// value zero after phase 1, deleting redundant all-zero rows.
func (t *tableau) purgeArtificials(ncore int) error {
	for i := 0; i < len(t.rows); i++ {
		if t.basis[i] < ncore {
			continue
		}
		// Find any structural column to pivot on.
		enter := -1
		for j := 0; j < ncore; j++ {
			if math.Abs(t.rows[i][j]) > eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			// Redundant constraint; remove the row.
			t.rows = append(t.rows[:i], t.rows[i+1:]...)
			t.rhs = append(t.rhs[:i], t.rhs[i+1:]...)
			t.basis = append(t.basis[:i], t.basis[i+1:]...)
			i--
			continue
		}
		t.pivot(i, enter)
	}
	return nil
}

// Maximize is a convenience wrapper: it maximizes c·x subject to Ax <= b.
func Maximize(c []float64, a [][]float64, b []float64) (Result, error) {
	return Solve(Problem{C: c, A: a, B: b})
}

// Minimize minimizes c·x subject to Ax <= b by maximizing -c·x. The
// returned Objective is the minimum value of c·x.
func Minimize(c []float64, a [][]float64, b []float64) (Result, error) {
	neg := make([]float64, len(c))
	for i, v := range c {
		neg[i] = -v
	}
	res, err := Solve(Problem{C: neg, A: a, B: b})
	if err != nil || res.Status != Optimal {
		return res, err
	}
	res.Objective = -res.Objective
	return res, nil
}

// Feasible reports whether {x : A x <= b} is nonempty, by solving a
// zero-objective LP.
func Feasible(a [][]float64, b []float64) (bool, error) {
	nv := 0
	if len(a) > 0 {
		nv = len(a[0])
	}
	res, err := Solve(Problem{C: make([]float64, nv), A: a, B: b})
	if err != nil {
		return false, err
	}
	return res.Status == Optimal, nil
}
