package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p Problem) Result {
	t.Helper()
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func TestSolveBasicMaximize(t *testing.T) {
	// maximize x+y s.t. x<=3, y<=4, x+y<=5 -> optimum 5.
	p := Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 0}, {0, 1}, {1, 1}},
		B: []float64{3, 4, 5},
	}
	res := solveOK(t, p)
	if res.Status != Optimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if math.Abs(res.Objective-5) > 1e-7 {
		t.Fatalf("objective = %v, want 5", res.Objective)
	}
	if got := res.X[0] + res.X[1]; math.Abs(got-5) > 1e-7 {
		t.Fatalf("x+y = %v, want 5", got)
	}
}

func TestSolveNegativeOptimum(t *testing.T) {
	// Free variables: maximize -x s.t. x >= 2 (i.e. -x <= -2) -> optimum -2.
	p := Problem{
		C: []float64{-1},
		A: [][]float64{{-1}},
		B: []float64{-2},
	}
	res := solveOK(t, p)
	if res.Status != Optimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if math.Abs(res.Objective-(-2)) > 1e-7 {
		t.Fatalf("objective = %v, want -2", res.Objective)
	}
}

func TestSolveFreeVariablesGoNegative(t *testing.T) {
	// maximize -x - y s.t. x >= -3, y >= -4  -> optimum 7 at (-3,-4).
	p := Problem{
		C: []float64{-1, -1},
		A: [][]float64{{-1, 0}, {0, -1}},
		B: []float64{3, 4},
	}
	res := solveOK(t, p)
	if res.Status != Optimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if math.Abs(res.Objective-7) > 1e-7 {
		t.Fatalf("objective = %v, want 7", res.Objective)
	}
	if math.Abs(res.X[0]+3) > 1e-7 || math.Abs(res.X[1]+4) > 1e-7 {
		t.Fatalf("X = %v, want (-3,-4)", res.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x <= 1 and x >= 2.
	p := Problem{
		C: []float64{1},
		A: [][]float64{{1}, {-1}},
		B: []float64{1, -2},
	}
	res := solveOK(t, p)
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// maximize x with only x >= 0.
	p := Problem{
		C: []float64{1},
		A: [][]float64{{-1}},
		B: []float64{0},
	}
	res := solveOK(t, p)
	if res.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Degenerate vertex at origin with redundant constraints; Bland's rule
	// must still terminate at the optimum.
	p := Problem{
		C: []float64{3, 2},
		A: [][]float64{
			{1, 1},
			{1, 1}, // duplicate
			{2, 2}, // scaled duplicate
			{1, 0},
			{0, 1},
			{-1, 0},
			{0, -1},
		},
		B: []float64{4, 4, 8, 3, 3, 0, 0},
	}
	res := solveOK(t, p)
	if res.Status != Optimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	// Optimum: maximize 3x+2y over x,y>=0, x+y<=4, x<=3, y<=3 -> x=3,y=1 -> 11.
	if math.Abs(res.Objective-11) > 1e-7 {
		t.Fatalf("objective = %v, want 11", res.Objective)
	}
}

func TestSolveEqualityViaPair(t *testing.T) {
	// x + y == 2 encoded as <= and >=; maximize x s.t. x <= 5.
	p := Problem{
		C: []float64{1, 0},
		A: [][]float64{{1, 1}, {-1, -1}, {1, 0}},
		B: []float64{2, -2, 5},
	}
	res := solveOK(t, p)
	if res.Status != Optimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if math.Abs(res.Objective-5) > 1e-7 {
		t.Fatalf("objective = %v, want 5 (y=-3)", res.Objective)
	}
	if math.Abs(res.X[0]+res.X[1]-2) > 1e-7 {
		t.Fatalf("x+y = %v, want 2", res.X[0]+res.X[1])
	}
}

func TestMinimize(t *testing.T) {
	// minimize x+y s.t. x >= 1, y >= 2 -> 3.
	res, err := Minimize(
		[]float64{1, 1},
		[][]float64{{-1, 0}, {0, -1}},
		[]float64{-1, -2},
	)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if math.Abs(res.Objective-3) > 1e-7 {
		t.Fatalf("objective = %v, want 3", res.Objective)
	}
}

func TestFeasible(t *testing.T) {
	ok, err := Feasible([][]float64{{1}, {-1}}, []float64{5, 5})
	if err != nil || !ok {
		t.Fatalf("Feasible(-5<=x<=5) = %v, %v; want true", ok, err)
	}
	ok, err = Feasible([][]float64{{1}, {-1}}, []float64{1, -2})
	if err != nil || ok {
		t.Fatalf("Feasible(x<=1, x>=2) = %v, %v; want false", ok, err)
	}
}

func TestSolveMalformed(t *testing.T) {
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}); err == nil {
		t.Fatal("want error for ragged constraint row")
	}
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{}}); err == nil {
		t.Fatal("want error for mismatched B length")
	}
}

func TestSolveNoConstraintsZeroObjective(t *testing.T) {
	res := solveOK(t, Problem{C: []float64{0, 0}})
	if res.Status != Optimal || res.Objective != 0 {
		t.Fatalf("got %+v, want optimal 0", res)
	}
}

// TestSolveAgainstVertexEnumeration cross-checks the simplex against a
// brute-force enumeration of constraint-intersection vertices on random
// bounded 2-D problems.
func TestSolveAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		// A random box keeps every instance bounded; add a few random cuts.
		a := [][]float64{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
		b := []float64{
			rng.Float64()*10 + 1, rng.Float64()*10 + 1,
			rng.Float64()*10 + 1, rng.Float64()*10 + 1,
		}
		extra := rng.Intn(4)
		for k := 0; k < extra; k++ {
			a = append(a, []float64{rng.NormFloat64(), rng.NormFloat64()})
			b = append(b, rng.NormFloat64()*3)
		}
		c := []float64{rng.NormFloat64(), rng.NormFloat64()}

		want, feasible := bruteForceMax2D(c, a, b)
		res, err := Solve(Problem{C: c, A: a, B: b})
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		if !feasible {
			if res.Status != Infeasible {
				t.Fatalf("trial %d: status %v, brute force says infeasible", trial, res.Status)
			}
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v, brute force says feasible (max %v)", trial, res.Status, want)
		}
		if math.Abs(res.Objective-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("trial %d: objective %v, brute force %v (c=%v a=%v b=%v)",
				trial, res.Objective, want, c, a, b)
		}
	}
}

// bruteForceMax2D enumerates all pairwise constraint intersections, keeps
// the feasible ones, and returns the max objective over those vertices.
func bruteForceMax2D(c []float64, a [][]float64, b []float64) (float64, bool) {
	const tol = 1e-7
	best := math.Inf(-1)
	found := false
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			det := a[i][0]*a[j][1] - a[i][1]*a[j][0]
			if math.Abs(det) < 1e-12 {
				continue
			}
			x := (b[i]*a[j][1] - a[i][1]*b[j]) / det
			y := (a[i][0]*b[j] - b[i]*a[j][0]) / det
			ok := true
			for k := range a {
				if a[k][0]*x+a[k][1]*y > b[k]+tol {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			found = true
			if v := c[0]*x + c[1]*y; v > best {
				best = v
			}
		}
	}
	return best, found
}

func BenchmarkSolveSmall(b *testing.B) {
	p := Problem{
		C: []float64{3, 2, 1},
		A: [][]float64{
			{1, 1, 1}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1},
			{-1, 0, 0}, {0, -1, 0}, {0, 0, -1},
		},
		B: []float64{10, 4, 5, 6, 0, 0, 0},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
