// Package client models the data user: it sends analytic queries to the
// cloud server, receives serialized answers over an (untrusted) channel,
// and verifies soundness and completeness against the data owner's
// published parameters before accepting any record.
package client

import (
	"errors"
	"fmt"
	"sync"

	"aqverify/internal/core"
	"aqverify/internal/mesh"
	"aqverify/internal/metrics"
	"aqverify/internal/pool"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/server"
	"aqverify/internal/wire"
)

// Channel transforms answer bytes in flight — the network of the paper's
// adversary model. A nil Channel is the identity.
type Channel func([]byte) []byte

// ErrRejected wraps every reason a client refuses an answer: failed
// verification, or bytes that do not even parse.
var ErrRejected = errors.New("client: answer rejected")

// Client verifies answers from one outsourced database. Exactly one of
// IFMH and Mesh must be set, matching the server's backend.
type Client struct {
	IFMH *core.PublicParams
	Mesh *mesh.PublicParams

	mu    sync.Mutex
	total metrics.Counter
}

// NewIFMH creates a client for an IFMH-backed database.
func NewIFMH(pub core.PublicParams) *Client { return &Client{IFMH: &pub} }

// NewMesh creates a client for a mesh-backed database.
func NewMesh(pub mesh.PublicParams) *Client { return &Client{Mesh: &pub} }

// Query sends q to the server through the channel and returns the
// verified records. Any tampering — by the server or the channel — yields
// an error wrapping ErrRejected.
func (c *Client) Query(s *server.Server, ch Channel, q query.Query) ([]record.Record, error) {
	raw, err := s.Handle(q)
	if err != nil {
		return nil, fmt.Errorf("client: server error: %w", err)
	}
	if ch != nil {
		raw = ch(raw)
	}
	var ctr metrics.Counter
	ctr.AddBytes(uint64(len(raw)))
	recs, err := c.verify(q, raw, &ctr)
	c.mu.Lock()
	c.total.Add(ctr)
	c.mu.Unlock()
	return recs, err
}

// BatchResult is one query's outcome in a batched exchange. Err wraps
// ErrRejected whenever the answer bytes failed to parse or verify.
// Shard reports which shard of a domain-sharded server answered (-1
// when the server is unsharded or the shard is unknown); verification
// never depends on it.
type BatchResult struct {
	Records []record.Record
	Err     error
	Shard   int
}

// QueryBatch sends a batch of queries through the server's batch path
// and verifies every answer concurrently (workers <= 0 means one per
// CPU). The result slice is parallel to qs; a per-item error never
// aborts the rest of the batch. Metrics accumulate exactly as if each
// query had been issued through Query.
func (c *Client) QueryBatch(s *server.Server, ch Channel, qs []query.Query, workers int) []BatchResult {
	raws, shards, errs := s.HandleBatchShards(qs, workers)
	results := newBatchResults(len(qs))
	for i := range raws {
		results[i].Shard = shards[i]
		if errs[i] != nil {
			results[i].Err = fmt.Errorf("client: server error: %w", errs[i])
			raws[i] = nil
			continue
		}
		if ch != nil {
			raws[i] = ch(raws[i])
		}
	}
	c.checkBatch(qs, raws, workers, results)
	return results
}

// CheckBatch parses and verifies many serialized answers concurrently
// without contacting a server — the batched counterpart of Check. raws
// is parallel to qs; a nil raws[i] yields a rejected item.
func (c *Client) CheckBatch(qs []query.Query, raws [][]byte, workers int) []BatchResult {
	results := newBatchResults(len(qs))
	c.checkBatch(qs, raws, workers, results)
	return results
}

// newBatchResults allocates a result slice with every shard unknown.
func newBatchResults(n int) []BatchResult {
	results := make([]BatchResult, n)
	for i := range results {
		results[i].Shard = wire.ShardNone
	}
	return results
}

// checkBatch verifies raws[i] into results[i] for every index whose
// result is not already an error. The IFMH decode happens inline (it is
// cheap); the signature-and-hash-heavy core verification fans out
// through core.VerifyBatch. Mesh answers verify on a local worker pool.
func (c *Client) checkBatch(qs []query.Query, raws [][]byte, workers int, results []BatchResult) {
	workers = pool.Workers(workers, len(qs))
	var total metrics.Counter
	switch {
	case c.IFMH != nil:
		// Decode and cross-check serially, collecting the verifiable
		// triples for the parallel verifier.
		items := make([]core.BatchItem, 0, len(qs))
		idx := make([]int, 0, len(qs))
		for i := range qs {
			if results[i].Err != nil {
				continue
			}
			total.AddBytes(uint64(len(raws[i])))
			ans, err := wire.DecodeIFMH(raws[i])
			if err != nil {
				results[i].Err = fmt.Errorf("%w: %v", ErrRejected, err)
				continue
			}
			if !sameQuery(qs[i], ans.Query) {
				results[i].Err = fmt.Errorf("%w: server answered a different query", ErrRejected)
				continue
			}
			results[i].Records = ans.Records
			items = append(items, core.BatchItem{Query: qs[i], Records: ans.Records, VO: &ans.VO})
			idx = append(idx, i)
		}
		for j, err := range core.VerifyBatch(*c.IFMH, items, workers, &total) {
			if err != nil {
				results[idx[j]].Records = nil
				results[idx[j]].Err = fmt.Errorf("%w: %v", ErrRejected, err)
			}
		}
	default:
		// Mesh (or misconfigured) clients verify per item on a bounded
		// worker pool; verify() handles both.
		ctrs := make([]metrics.Counter, workers)
		pool.Run(len(qs), workers, func(w, i int) {
			if results[i].Err != nil {
				return
			}
			ctrs[w].AddBytes(uint64(len(raws[i])))
			recs, err := c.verify(qs[i], raws[i], &ctrs[w])
			results[i].Records, results[i].Err = recs, err
		})
		for i := range ctrs {
			total.Add(ctrs[i])
		}
	}
	c.mu.Lock()
	c.total.Add(total)
	c.mu.Unlock()
}

// Check parses and verifies one serialized answer without contacting a
// server — the entry point for transports that deliver the bytes
// themselves (e.g. the HTTP client). Metrics accumulate as with Query.
func (c *Client) Check(q query.Query, raw []byte) ([]record.Record, error) {
	var ctr metrics.Counter
	ctr.AddBytes(uint64(len(raw)))
	recs, err := c.verify(q, raw, &ctr)
	c.mu.Lock()
	c.total.Add(ctr)
	c.mu.Unlock()
	return recs, err
}

// verify parses and verifies one serialized answer.
func (c *Client) verify(q query.Query, raw []byte, ctr *metrics.Counter) ([]record.Record, error) {
	switch {
	case c.IFMH != nil:
		ans, err := wire.DecodeIFMH(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRejected, err)
		}
		if !sameQuery(q, ans.Query) {
			return nil, fmt.Errorf("%w: server answered a different query", ErrRejected)
		}
		if err := core.Verify(*c.IFMH, q, ans.Records, &ans.VO, ctr); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRejected, err)
		}
		return ans.Records, nil
	case c.Mesh != nil:
		ans, err := wire.DecodeMesh(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRejected, err)
		}
		if !sameQuery(q, ans.Query) {
			return nil, fmt.Errorf("%w: server answered a different query", ErrRejected)
		}
		if err := mesh.Verify(*c.Mesh, q, ans.Records, &ans.VO, ctr); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRejected, err)
		}
		return ans.Records, nil
	default:
		return nil, fmt.Errorf("client: no public parameters configured")
	}
}

// sameQuery checks the server echoed the query the client sent. The
// verification itself uses the client's own copy of q, so this check only
// guards against confused-server responses, not security.
func sameQuery(a, b query.Query) bool { return query.Equal(a, b) }

// Stats returns the client's cumulative verification metrics.
func (c *Client) Stats() metrics.Counter {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}
