// Package client models the data user: it sends analytic queries to the
// cloud server, receives serialized answers over an (untrusted) channel,
// and verifies soundness and completeness against the data owner's
// published parameters before accepting any record.
package client

import (
	"errors"
	"fmt"
	"sync"

	"aqverify/internal/core"
	"aqverify/internal/mesh"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/server"
	"aqverify/internal/wire"
)

// Channel transforms answer bytes in flight — the network of the paper's
// adversary model. A nil Channel is the identity.
type Channel func([]byte) []byte

// ErrRejected wraps every reason a client refuses an answer: failed
// verification, or bytes that do not even parse.
var ErrRejected = errors.New("client: answer rejected")

// Client verifies answers from one outsourced database. Exactly one of
// IFMH and Mesh must be set, matching the server's backend.
type Client struct {
	IFMH *core.PublicParams
	Mesh *mesh.PublicParams

	mu    sync.Mutex
	total metrics.Counter
}

// NewIFMH creates a client for an IFMH-backed database.
func NewIFMH(pub core.PublicParams) *Client { return &Client{IFMH: &pub} }

// NewMesh creates a client for a mesh-backed database.
func NewMesh(pub mesh.PublicParams) *Client { return &Client{Mesh: &pub} }

// Query sends q to the server through the channel and returns the
// verified records. Any tampering — by the server or the channel — yields
// an error wrapping ErrRejected.
func (c *Client) Query(s *server.Server, ch Channel, q query.Query) ([]record.Record, error) {
	raw, err := s.Handle(q)
	if err != nil {
		return nil, fmt.Errorf("client: server error: %w", err)
	}
	if ch != nil {
		raw = ch(raw)
	}
	var ctr metrics.Counter
	ctr.AddBytes(uint64(len(raw)))
	recs, err := c.verify(q, raw, &ctr)
	c.mu.Lock()
	c.total.Add(ctr)
	c.mu.Unlock()
	return recs, err
}

// Check parses and verifies one serialized answer without contacting a
// server — the entry point for transports that deliver the bytes
// themselves (e.g. the HTTP client). Metrics accumulate as with Query.
func (c *Client) Check(q query.Query, raw []byte) ([]record.Record, error) {
	var ctr metrics.Counter
	ctr.AddBytes(uint64(len(raw)))
	recs, err := c.verify(q, raw, &ctr)
	c.mu.Lock()
	c.total.Add(ctr)
	c.mu.Unlock()
	return recs, err
}

// verify parses and verifies one serialized answer.
func (c *Client) verify(q query.Query, raw []byte, ctr *metrics.Counter) ([]record.Record, error) {
	switch {
	case c.IFMH != nil:
		ans, err := wire.DecodeIFMH(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRejected, err)
		}
		if !sameQuery(q, ans.Query) {
			return nil, fmt.Errorf("%w: server answered a different query", ErrRejected)
		}
		if err := core.Verify(*c.IFMH, q, ans.Records, &ans.VO, ctr); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRejected, err)
		}
		return ans.Records, nil
	case c.Mesh != nil:
		ans, err := wire.DecodeMesh(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRejected, err)
		}
		if !sameQuery(q, ans.Query) {
			return nil, fmt.Errorf("%w: server answered a different query", ErrRejected)
		}
		if err := mesh.Verify(*c.Mesh, q, ans.Records, &ans.VO, ctr); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRejected, err)
		}
		return ans.Records, nil
	default:
		return nil, fmt.Errorf("client: no public parameters configured")
	}
}

// sameQuery checks the server echoed the query the client sent. The
// verification itself uses the client's own copy of q, so this check only
// guards against confused-server responses, not security.
func sameQuery(a, b query.Query) bool {
	if a.Kind != b.Kind || a.K != b.K || a.L != b.L || a.U != b.U || a.Y != b.Y || len(a.X) != len(b.X) {
		return false
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			return false
		}
	}
	return true
}

// Stats returns the client's cumulative verification metrics.
func (c *Client) Stats() metrics.Counter {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}
