package client

import (
	"errors"
	"math/rand"
	"testing"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/mesh"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/server"
	"aqverify/internal/sig"
)

func fixtures(t *testing.T) (*server.Server, core.PublicParams, *server.Server, mesh.PublicParams, geometry.Box) {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	recs := make([]record.Record, 40)
	for i := range recs {
		recs[i] = record.Record{ID: uint64(i + 1), Attrs: []float64{rng.NormFloat64(), rng.NormFloat64()}}
	}
	tbl, err := record.NewTable(record.Schema{
		Name:    "t",
		Columns: []record.Column{{Name: "a"}, {Name: "b"}},
	}, recs)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dom := geometry.MustBox([]float64{-1}, []float64{1})
	tpl := funcs.AffineLine(0, 1)
	tree, err := core.Build(tbl, core.Params{Mode: core.MultiSignature, Signer: signer, Domain: dom, Template: tpl})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mesh.Build(tbl, mesh.Params{Signer: signer, Domain: dom, Template: tpl})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.IFMH{Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	msrv, err := server.New(server.Mesh{M: m})
	if err != nil {
		t.Fatal(err)
	}
	return srv, tree.Public(), msrv, m.Public(), dom
}

func TestHonestQueriesVerify(t *testing.T) {
	srv, pub, msrv, mpub, dom := fixtures(t)
	x := geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	for _, q := range []query.Query{
		query.NewTopK(x, 4),
		query.NewBottomK(x, 4),
		query.NewRange(x, -1, 1),
		query.NewKNN(x, 4, 0),
	} {
		if _, err := NewIFMH(pub).Query(srv, nil, q); err != nil {
			t.Errorf("ifmh %v: %v", q.Kind, err)
		}
		if _, err := NewMesh(mpub).Query(msrv, nil, q); err != nil {
			t.Errorf("mesh %v: %v", q.Kind, err)
		}
	}
}

func TestGarbageBytesRejected(t *testing.T) {
	srv, pub, _, _, dom := fixtures(t)
	cli := NewIFMH(pub)
	x := geometry.Point{0}
	_ = dom
	garbage := func(b []byte) []byte { return []byte("not an answer") }
	if _, err := cli.Query(srv, garbage, query.NewTopK(x, 1)); !errors.Is(err, ErrRejected) {
		t.Errorf("garbage accepted: %v", err)
	}
	empty := func(b []byte) []byte { return nil }
	if _, err := cli.Query(srv, empty, query.NewTopK(x, 1)); !errors.Is(err, ErrRejected) {
		t.Errorf("empty answer accepted: %v", err)
	}
}

func TestQueryEchoMismatchRejected(t *testing.T) {
	srv, pub, _, _, _ := fixtures(t)
	cli := NewIFMH(pub)
	// The channel swaps in an answer for a different (also honestly
	// processed) query; the client must notice the echo mismatch or fail
	// verification.
	q1 := query.NewTopK(geometry.Point{0.1}, 3)
	q2 := query.NewTopK(geometry.Point{0.1}, 5)
	swap := func(b []byte) []byte {
		raw, err := srv.Handle(q2)
		if err != nil {
			return b
		}
		return raw
	}
	if _, err := cli.Query(srv, swap, q1); !errors.Is(err, ErrRejected) {
		t.Errorf("cross-query replay accepted: %v", err)
	}
}

func TestMisconfiguredClient(t *testing.T) {
	srv, _, _, _, _ := fixtures(t)
	var c Client // neither IFMH nor Mesh params
	if _, err := c.Query(srv, nil, query.NewTopK(geometry.Point{0}, 1)); err == nil {
		t.Error("unconfigured client returned records")
	}
}

func TestServerErrorPropagates(t *testing.T) {
	srv, pub, _, _, _ := fixtures(t)
	cli := NewIFMH(pub)
	if _, err := cli.Query(srv, nil, query.NewTopK(geometry.Point{5}, 1)); err == nil {
		t.Error("out-of-domain query returned records")
	} else if errors.Is(err, ErrRejected) {
		t.Error("server error misclassified as a verification rejection")
	}
}

func TestStatsAccumulate(t *testing.T) {
	srv, pub, _, _, dom := fixtures(t)
	cli := NewIFMH(pub)
	x := geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	for i := 0; i < 3; i++ {
		if _, err := cli.Query(srv, nil, query.NewTopK(x, 2)); err != nil {
			t.Fatal(err)
		}
	}
	st := cli.Stats()
	if st.Bytes == 0 || st.Hashes == 0 || st.SigVerifies != 3 {
		t.Errorf("client stats wrong: %+v", st)
	}
}
