package client

import (
	"errors"
	"testing"

	"aqverify/internal/geometry"
	"aqverify/internal/query"
	"aqverify/internal/server"
)

func batchQueries(dom geometry.Box) []query.Query {
	x := geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	return []query.Query{
		query.NewTopK(x, 3),
		query.NewBottomK(x, 3),
		query.NewRange(x, -2, 2),
		query.NewKNN(x, 3, 0),
		query.NewTopK(geometry.Point{dom.Hi[0] + 7}, 1), // refused by the server
	}
}

// TestQueryBatchVerifies: the batched client path returns exactly what
// per-query Query returns — verified records for honest answers, a
// server error for the refused query — for IFMH and mesh backends alike
// and for every worker count.
func TestQueryBatchVerifies(t *testing.T) {
	srv, pub, msrv, mpub, dom := fixtures(t)
	qs := batchQueries(dom)
	for _, tc := range []struct {
		name string
		cli  *Client
		srv  *server.Server
	}{
		{"ifmh", NewIFMH(pub), srv},
		{"mesh", NewMesh(mpub), msrv},
	} {
		// Sequential reference results.
		want := make([]BatchResult, len(qs))
		for i, q := range qs {
			recs, err := tc.cli.Query(tc.srv, nil, q)
			want[i] = BatchResult{Records: recs, Err: err}
		}
		for _, workers := range []int{0, 1, 4} {
			results := tc.cli.QueryBatch(tc.srv, nil, qs, workers)
			if len(results) != len(qs) {
				t.Fatalf("%s workers=%d: %d results for %d queries", tc.name, workers, len(results), len(qs))
			}
			for i, r := range results {
				if (r.Err != nil) != (want[i].Err != nil) {
					t.Errorf("%s workers=%d query %d: err = %v, want err = %v", tc.name, workers, i, r.Err, want[i].Err)
					continue
				}
				if len(r.Records) != len(want[i].Records) {
					t.Errorf("%s workers=%d query %d: %d records, want %d", tc.name, workers, i, len(r.Records), len(want[i].Records))
					continue
				}
				for j := range r.Records {
					if r.Records[j].ID != want[i].Records[j].ID {
						t.Errorf("%s workers=%d query %d record %d: ID %d, want %d",
							tc.name, workers, i, j, r.Records[j].ID, want[i].Records[j].ID)
					}
				}
			}
		}
	}
}

// TestQueryBatchTamperingRejected: a channel corrupting one answer in
// the batch takes down exactly that item.
func TestQueryBatchTamperingRejected(t *testing.T) {
	srv, pub, _, _, dom := fixtures(t)
	cli := NewIFMH(pub)
	qs := batchQueries(dom)[:4] // drop the refused query: all honest here
	var calls int
	ch := func(b []byte) []byte {
		calls++
		if calls == 2 { // corrupt only the second answer
			out := append([]byte(nil), b...)
			out[len(out)/2] ^= 0x40
			return out
		}
		return b
	}
	results := cli.QueryBatch(srv, ch, qs, 4)
	for i, r := range results {
		if i == 1 {
			if !errors.Is(r.Err, ErrRejected) {
				t.Errorf("tampered item error = %v, want ErrRejected", r.Err)
			}
			if len(r.Records) != 0 {
				t.Error("tampered item still returned records")
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("untampered query %d rejected: %v", i, r.Err)
		}
	}
}

// TestCheckBatchNilAnswer: a missing answer is a rejection, not a panic.
func TestCheckBatchNilAnswer(t *testing.T) {
	_, pub, _, _, dom := fixtures(t)
	cli := NewIFMH(pub)
	qs := batchQueries(dom)[:1]
	results := cli.CheckBatch(qs, [][]byte{nil}, 2)
	if !errors.Is(results[0].Err, ErrRejected) {
		t.Errorf("nil answer error = %v, want ErrRejected", results[0].Err)
	}
}
