// Package query defines the three analytic query types of the paper —
// top-k, score range, and KNN in score space — together with their exact
// window semantics over a sorted function list and a trusted reference
// executor used as a test oracle.
//
// All three queries resolve to a contiguous window of the list of records
// sorted ascending by score under the query's function input X. Pinning
// the window semantics down exactly (including tie handling) matters
// because the client re-derives the window during verification and must
// agree with the server bit for bit.
package query

import (
	"fmt"
	"math"

	"aqverify/internal/geometry"
	"aqverify/internal/metrics"
)

// Kind enumerates the supported analytic query types.
type Kind int

const (
	// TopK retrieves the k records with the highest scores. Ties at the
	// k-th score are resolved by the owner's canonical list order (exact
	// score, then record index), so the result is always exactly
	// min(k, n) records.
	TopK Kind = iota
	// Range retrieves every record whose score lies in [L, U].
	Range
	// KNN retrieves the k records whose scores are nearest to Y.
	// Distance ties between a left and right candidate are broken toward
	// the left (smaller score), making the window unique and
	// client-checkable.
	KNN
	// BottomK retrieves the k records with the lowest scores — the
	// mirror of TopK, included as the paper's "other query types"
	// extension point: any query whose answer is a contiguous window of
	// the sorted list plugs into the same machinery.
	BottomK
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case TopK:
		return "top-k"
	case Range:
		return "range"
	case KNN:
		return "knn"
	case BottomK:
		return "bottom-k"
	default:
		return fmt.Sprintf("query.Kind(%d)", int(k))
	}
}

// Query is one analytic query. X is the function input (the weight vector
// applied to every record's function); the remaining fields depend on
// Kind.
type Query struct {
	Kind Kind
	X    geometry.Point
	K    int     // TopK, KNN
	L, U float64 // Range
	Y    float64 // KNN
}

// NewTopK builds a top-k query.
func NewTopK(x geometry.Point, k int) Query {
	return Query{Kind: TopK, X: x, K: k}
}

// NewRange builds a range query over scores in [l, u].
func NewRange(x geometry.Point, l, u float64) Query {
	return Query{Kind: Range, X: x, L: l, U: u}
}

// NewKNN builds a k-nearest-neighbors query around score y.
func NewKNN(x geometry.Point, k int, y float64) Query {
	return Query{Kind: KNN, X: x, K: k, Y: y}
}

// NewBottomK builds a bottom-k query.
func NewBottomK(x geometry.Point, k int) Query {
	return Query{Kind: BottomK, X: x, K: k}
}

// Equal reports whether two queries are field-for-field identical
// (float fields compared exactly). Verifying clients use it to check
// that a server echoed the query it was asked.
func Equal(a, b Query) bool {
	if a.Kind != b.Kind || a.K != b.K || a.L != b.L || a.U != b.U || a.Y != b.Y || len(a.X) != len(b.X) {
		return false
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			return false
		}
	}
	return true
}

// Validate checks the query's internal consistency for a d-variable
// database.
func (q Query) Validate(dim int) error {
	if len(q.X) != dim {
		return fmt.Errorf("query: function input has %d variables, database has %d", len(q.X), dim)
	}
	for _, v := range q.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("query: non-finite function input")
		}
	}
	switch q.Kind {
	case TopK, KNN, BottomK:
		if q.K < 1 {
			return fmt.Errorf("query: %v needs k >= 1, got %d", q.Kind, q.K)
		}
	case Range:
		if math.IsNaN(q.L) || math.IsNaN(q.U) || q.L > q.U {
			return fmt.Errorf("query: range [%v,%v] is empty or invalid", q.L, q.U)
		}
	default:
		return fmt.Errorf("query: unknown kind %d", int(q.Kind))
	}
	if q.Kind == KNN && (math.IsNaN(q.Y) || math.IsInf(q.Y, 0)) {
		return fmt.Errorf("query: knn target must be finite")
	}
	return nil
}

// Window is a contiguous slice [Start, Start+Count) of positions in a
// sorted function list. Count may be zero (an empty range result), in
// which case Start is the insertion point of the query's lower bound.
type Window struct {
	Start, Count int
}

// End returns the exclusive end position.
func (w Window) End() int { return w.Start + w.Count }

// SelectWindow computes the query's result window over scores, which must
// be sorted ascending (the scores of the subdomain's sorted function list
// evaluated at q.X). The counter observes the binary-search comparisons.
// This one function defines the query semantics for the server, the
// verifying client, and the reference executor.
func SelectWindow(scores []float64, q Query, ctr *metrics.Counter) (Window, error) {
	n := len(scores)
	switch q.Kind {
	case TopK:
		k := q.K
		if k > n {
			k = n
		}
		return Window{Start: n - k, Count: k}, nil
	case BottomK:
		k := q.K
		if k > n {
			k = n
		}
		return Window{Start: 0, Count: k}, nil
	case Range:
		lo := lowerBound(scores, q.L, ctr)
		hi := upperBound(scores, q.U, ctr)
		if hi < lo {
			hi = lo
		}
		return Window{Start: lo, Count: hi - lo}, nil
	case KNN:
		k := q.K
		if k > n {
			k = n
		}
		if k == 0 {
			return Window{}, fmt.Errorf("query: knn over empty list")
		}
		// Greedy expansion with left preference on distance ties.
		right := lowerBound(scores, q.Y, ctr)
		left := right - 1
		for taken := 0; taken < k; taken++ {
			takeLeft := false
			switch {
			case left < 0:
				takeLeft = false
			case right >= n:
				takeLeft = true
			default:
				dl := math.Abs(scores[left] - q.Y)
				dr := math.Abs(scores[right] - q.Y)
				ctr.AddComparisons(1)
				takeLeft = dl <= dr
			}
			if takeLeft {
				left--
			} else {
				right++
			}
		}
		return Window{Start: left + 1, Count: k}, nil
	default:
		return Window{}, fmt.Errorf("query: unknown kind %d", int(q.Kind))
	}
}

// lowerBound returns the first index with scores[i] >= v.
func lowerBound(scores []float64, v float64, ctr *metrics.Counter) int {
	lo, hi := 0, len(scores)
	for lo < hi {
		mid := (lo + hi) / 2
		ctr.AddComparisons(1)
		if scores[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first index with scores[i] > v.
func upperBound(scores []float64, v float64, ctr *metrics.Counter) int {
	lo, hi := 0, len(scores)
	for lo < hi {
		mid := (lo + hi) / 2
		ctr.AddComparisons(1)
		if scores[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
