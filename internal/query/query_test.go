package query

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/metrics"
	"aqverify/internal/record"
)

func TestValidate(t *testing.T) {
	x := geometry.Point{1, 2}
	valid := []Query{
		NewTopK(x, 1),
		NewRange(x, 0, 0),
		NewRange(x, -5, 5),
		NewKNN(x, 3, 1.5),
	}
	for _, q := range valid {
		if err := q.Validate(2); err != nil {
			t.Errorf("%v: unexpected error %v", q.Kind, err)
		}
	}
	invalid := []Query{
		NewTopK(x, 0),
		NewTopK(geometry.Point{1}, 1),
		NewTopK(geometry.Point{math.NaN(), 0}, 1),
		NewRange(x, 5, -5),
		NewRange(x, math.NaN(), 1),
		NewKNN(x, 0, 1),
		NewKNN(x, 1, math.Inf(1)),
		{Kind: Kind(99), X: x},
	}
	for _, q := range invalid {
		if err := q.Validate(2); err == nil {
			t.Errorf("%+v: expected validation error", q)
		}
	}
}

func win(t *testing.T, scores []float64, q Query) Window {
	t.Helper()
	w, err := SelectWindow(scores, q, nil)
	if err != nil {
		t.Fatalf("SelectWindow: %v", err)
	}
	return w
}

func TestSelectWindowTopK(t *testing.T) {
	scores := []float64{1, 2, 3, 4, 5}
	x := geometry.Point{0}
	if w := win(t, scores, NewTopK(x, 2)); w.Start != 3 || w.Count != 2 {
		t.Errorf("top-2 = %+v", w)
	}
	// k larger than n clamps.
	if w := win(t, scores, NewTopK(x, 10)); w.Start != 0 || w.Count != 5 {
		t.Errorf("top-10 of 5 = %+v", w)
	}
}

func TestSelectWindowRange(t *testing.T) {
	scores := []float64{1, 2, 2, 3, 5}
	x := geometry.Point{0}
	tests := []struct {
		l, u         float64
		start, count int
	}{
		{2, 3, 1, 3},     // both duplicate 2s and the 3
		{1.5, 4, 1, 3},   // interior bounds
		{0, 10, 0, 5},    // everything
		{6, 9, 5, 0},     // empty beyond the end
		{-3, 0, 0, 0},    // empty before the start
		{2.5, 2.7, 3, 0}, // empty interior gap
		{2, 2, 1, 2},     // degenerate range hits duplicates
	}
	for _, tc := range tests {
		w := win(t, scores, NewRange(x, tc.l, tc.u))
		if w.Start != tc.start || w.Count != tc.count {
			t.Errorf("range [%v,%v] = %+v, want start %d count %d", tc.l, tc.u, w, tc.start, tc.count)
		}
	}
}

func TestSelectWindowKNN(t *testing.T) {
	scores := []float64{1, 3, 6, 10, 15}
	x := geometry.Point{0}
	tests := []struct {
		k            int
		y            float64
		start, count int
	}{
		{1, 6.4, 2, 1},  // nearest to 6.4 is 6
		{2, 6.4, 1, 2},  // 6 then 3 (|3-6.4|=3.4 < |10-6.4|=3.6)
		{3, 6.4, 1, 3},  // plus 10
		{1, 100, 4, 1},  // off the high end
		{2, -100, 0, 2}, // off the low end
		{5, 6, 0, 5},    // whole list
		{9, 6, 0, 5},    // k clamps to n
	}
	for _, tc := range tests {
		w := win(t, scores, NewKNN(x, tc.k, tc.y))
		if w.Start != tc.start || w.Count != tc.count {
			t.Errorf("knn k=%d y=%v = %+v, want start %d count %d", tc.k, tc.y, w, tc.start, tc.count)
		}
	}
}

func TestSelectWindowKNNLeftPreference(t *testing.T) {
	scores := []float64{2, 4, 6}
	// y=5: distances to 4 and 6 tie at 1; left preference takes 4.
	w := win(t, scores, NewKNN(geometry.Point{0}, 1, 5))
	if w.Start != 1 || w.Count != 1 {
		t.Errorf("tie broke to %+v, want the left element (start 1)", w)
	}
	// k=2 takes both of the tied pair.
	w = win(t, scores, NewKNN(geometry.Point{0}, 2, 5))
	if w.Start != 1 || w.Count != 2 {
		t.Errorf("k=2 tie = %+v", w)
	}
}

func TestSelectWindowKNNBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = math.Round(rng.Float64()*20) / 2 // encourage ties
		}
		sort.Float64s(scores)
		k := 1 + rng.Intn(n)
		y := rng.Float64() * 12
		w := win(t, scores, NewKNN(geometry.Point{0}, k, y))
		if w.Count != k {
			t.Fatalf("trial %d: count %d, want %d", trial, w.Count, k)
		}
		// The window must be optimal: its max distance must not exceed
		// the distance of any element outside it.
		maxIn := 0.0
		for p := w.Start; p < w.End(); p++ {
			if d := math.Abs(scores[p] - y); d > maxIn {
				maxIn = d
			}
		}
		for p := 0; p < n; p++ {
			if p >= w.Start && p < w.End() {
				continue
			}
			if d := math.Abs(scores[p] - y); d < maxIn-1e-12 {
				t.Fatalf("trial %d: outside element %v closer than window max %v", trial, scores[p], maxIn)
			}
		}
	}
}

func TestSelectWindowCountsComparisons(t *testing.T) {
	scores := make([]float64, 1024)
	for i := range scores {
		scores[i] = float64(i)
	}
	var ctr metrics.Counter
	if _, err := SelectWindow(scores, NewRange(geometry.Point{0}, 100, 200), &ctr); err != nil {
		t.Fatal(err)
	}
	if ctr.Comparisons == 0 || ctr.Comparisons > 64 {
		t.Errorf("Comparisons = %d, want ~2*log2(1024)", ctr.Comparisons)
	}
}

func testTable(t *testing.T, n int, seed int64) record.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{ID: uint64(i + 1), Attrs: []float64{rng.NormFloat64(), rng.NormFloat64()}}
	}
	tbl, err := record.NewTable(record.Schema{Name: "t", Columns: []record.Column{{Name: "a"}, {Name: "b"}}}, recs)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestExecTopK(t *testing.T) {
	tbl := testTable(t, 50, 1)
	tpl := funcs.ScalarProduct(2)
	q := NewTopK(geometry.Point{1, 0.5}, 5)
	res, err := Exec(tbl, tpl, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 5 {
		t.Fatalf("got %d records", len(res.Records))
	}
	// Scores ascending, and all remaining records score no higher than
	// the smallest returned score.
	for i := 1; i < 5; i++ {
		if res.Scores[i] < res.Scores[i-1] {
			t.Error("scores not ascending")
		}
	}
	inResult := map[uint64]bool{}
	for _, r := range res.Records {
		inResult[r.ID] = true
	}
	for _, r := range tbl.Records {
		if inResult[r.ID] {
			continue
		}
		f := tpl.Interpret(0, r)
		if f.Eval(q.X) > res.Scores[0] {
			t.Fatalf("record %d outside top-k scores higher than the window floor", r.ID)
		}
	}
}

func TestExecRangeCompleteness(t *testing.T) {
	tbl := testTable(t, 80, 2)
	tpl := funcs.ScalarProduct(2)
	q := NewRange(geometry.Point{0.3, 0.7}, -0.5, 0.5)
	res, err := Exec(tbl, tpl, q)
	if err != nil {
		t.Fatal(err)
	}
	inResult := map[uint64]bool{}
	for i, r := range res.Records {
		inResult[r.ID] = true
		if res.Scores[i] < q.L || res.Scores[i] > q.U {
			t.Fatalf("record %d score %v outside range", r.ID, res.Scores[i])
		}
	}
	for _, r := range tbl.Records {
		s := tpl.Interpret(0, r).Eval(q.X)
		if s >= q.L && s <= q.U && !inResult[r.ID] {
			t.Fatalf("record %d with score %v missing from range result", r.ID, s)
		}
	}
}

func TestExecKNN(t *testing.T) {
	tbl := testTable(t, 60, 3)
	tpl := funcs.ScalarProduct(2)
	q := NewKNN(geometry.Point{0.9, -0.2}, 7, 0.1)
	res, err := Exec(tbl, tpl, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 7 {
		t.Fatalf("got %d records, want 7", len(res.Records))
	}
	maxIn := 0.0
	for _, s := range res.Scores {
		if d := math.Abs(s - q.Y); d > maxIn {
			maxIn = d
		}
	}
	inResult := map[uint64]bool{}
	for _, r := range res.Records {
		inResult[r.ID] = true
	}
	for _, r := range tbl.Records {
		if inResult[r.ID] {
			continue
		}
		s := tpl.Interpret(0, r).Eval(q.X)
		if math.Abs(s-q.Y) < maxIn-1e-12 {
			t.Fatalf("record %d closer to target than window max", r.ID)
		}
	}
}

func TestExecValidates(t *testing.T) {
	tbl := testTable(t, 5, 4)
	if _, err := Exec(tbl, funcs.ScalarProduct(2), NewTopK(geometry.Point{1}, 1)); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := Exec(tbl, funcs.ScalarProduct(9), NewTopK(geometry.Point{1, 1}, 1)); err == nil {
		t.Error("bad template accepted")
	}
}
