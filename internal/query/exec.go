package query

import (
	"sort"

	"aqverify/internal/funcs"
	"aqverify/internal/record"
)

// Result is the outcome of the trusted reference executor: the matching
// records in ascending score order, plus their scores.
type Result struct {
	Records []record.Record
	Scores  []float64
	Window  Window
}

// Exec runs q directly against the raw table under the template — the
// trusted computation a user could do locally if it had the whole
// database. It is the oracle every verified result is compared against in
// tests, and deliberately shares SelectWindow with the production paths
// so the semantics cannot drift apart.
func Exec(tbl record.Table, tpl funcs.Template, q Query) (Result, error) {
	fs, err := tpl.InterpretTable(tbl)
	if err != nil {
		return Result{}, err
	}
	if err := q.Validate(tpl.Dim()); err != nil {
		return Result{}, err
	}
	type scored struct {
		idx   int
		score float64
	}
	ss := make([]scored, len(fs))
	for i, f := range fs {
		ss[i] = scored{idx: i, score: f.Eval(q.X)}
	}
	sort.Slice(ss, func(a, b int) bool {
		if ss[a].score != ss[b].score {
			return ss[a].score < ss[b].score
		}
		return ss[a].idx < ss[b].idx
	})
	scores := make([]float64, len(ss))
	for i, s := range ss {
		scores[i] = s.score
	}
	w, err := SelectWindow(scores, q, nil)
	if err != nil {
		return Result{}, err
	}
	out := Result{Window: w}
	for pos := w.Start; pos < w.End(); pos++ {
		out.Records = append(out.Records, tbl.Records[ss[pos].idx])
		out.Scores = append(out.Scores, scores[pos])
	}
	return out, nil
}
