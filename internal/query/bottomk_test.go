package query

import (
	"testing"

	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
)

func TestSelectWindowBottomK(t *testing.T) {
	scores := []float64{1, 2, 3, 4, 5}
	x := geometry.Point{0}
	if w := win(t, scores, NewBottomK(x, 2)); w.Start != 0 || w.Count != 2 {
		t.Errorf("bottom-2 = %+v", w)
	}
	if w := win(t, scores, NewBottomK(x, 10)); w.Start != 0 || w.Count != 5 {
		t.Errorf("bottom-10 of 5 = %+v", w)
	}
}

func TestBottomKValidate(t *testing.T) {
	if err := NewBottomK(geometry.Point{1}, 3).Validate(1); err != nil {
		t.Errorf("valid bottom-k rejected: %v", err)
	}
	if err := NewBottomK(geometry.Point{1}, 0).Validate(1); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestExecBottomK(t *testing.T) {
	tbl := testTable(t, 40, 21)
	tpl := funcs.ScalarProduct(2)
	q := NewBottomK(geometry.Point{0.7, 0.3}, 6)
	res, err := Exec(tbl, tpl, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 6 {
		t.Fatalf("got %d records", len(res.Records))
	}
	inResult := map[uint64]bool{}
	for _, r := range res.Records {
		inResult[r.ID] = true
	}
	ceiling := res.Scores[len(res.Scores)-1]
	for _, r := range tbl.Records {
		if inResult[r.ID] {
			continue
		}
		if s := tpl.Interpret(0, r).Eval(q.X); s < ceiling {
			t.Fatalf("record %d (score %v) below the bottom-k ceiling %v was omitted", r.ID, s, ceiling)
		}
	}
}

func TestBottomKIsTopKMirror(t *testing.T) {
	scores := []float64{1, 2, 3, 4, 5, 6, 7}
	x := geometry.Point{0}
	for k := 1; k <= 7; k++ {
		bot := win(t, scores, NewBottomK(x, k))
		top := win(t, scores, NewTopK(x, k))
		if bot.Count != top.Count {
			t.Fatalf("k=%d: counts differ", k)
		}
		if bot.Start != 0 || top.End() != len(scores) {
			t.Fatalf("k=%d: windows not anchored at opposite ends", k)
		}
	}
}
