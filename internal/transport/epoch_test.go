package transport

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"aqverify/internal/backend"
	"aqverify/internal/build"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/query"
	"aqverify/internal/server"
	"aqverify/internal/sig"
	"aqverify/internal/wire"
	"aqverify/internal/workload"
)

// epochFixture outsources a table and serves it over HTTP, returning
// the owner's product, the live server (for Swap) and the test server.
func epochFixture(t *testing.T) (*build.Result, *server.Server, *httptest.Server, geometry.Box) {
	t.Helper()
	ctx := context.Background()
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := build.Outsource(ctx, build.Spec{
		Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: signer,
	}, build.WithShuffle(11))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.IFMH{Tree: res.Tree})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewIFMHHandler(srv, res.Public)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return res, srv, ts, dom
}

// mutated applies one in-place update to the product, producing the
// next epoch.
func mutated(t *testing.T, prev *build.Result, i int) *build.Result {
	t.Helper()
	rows := prev.Tree.Table().Records
	upd := rows[i%len(rows)]
	upd.Attrs = append([]float64(nil), upd.Attrs...)
	upd.Attrs[0] += 0.01
	next, err := build.Apply(context.Background(), prev, build.Update(i%len(rows), upd))
	if err != nil {
		t.Fatal(err)
	}
	return next
}

// TestEpochPinAndRefresh walks the full client-side epoch lifecycle
// over real HTTP: the pin lands at dial, epoch words travel in batch
// and stream answers, a server swap turns the next answers into typed
// EpochErrors (batch and stream alike), /params and /stats report the
// live epoch, and Refresh re-pins so re-queries verify at the new
// epoch.
func TestEpochPinAndRefresh(t *testing.T) {
	ctx := context.Background()
	res, srv, ts, dom := epochFixture(t)
	r, err := DialRemote(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 1 || r.Client().Epoch() != 1 {
		t.Fatalf("pinned epoch = %d, want 1", r.Epoch())
	}

	x := geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	qs := []query.Query{query.NewTopK(x, 3), query.NewRange(x, -1, 1)}
	answers, errs := r.QueryBatch(ctx, qs, backend.WithVerify(res.Public))
	for i := range qs {
		if errs[i] != nil {
			t.Fatalf("epoch-1 query %d: %v", i, errs[i])
		}
		if answers[i].Epoch != 1 {
			t.Fatalf("epoch-1 answer %d stamped %d", i, answers[i].Epoch)
		}
	}
	for i, br := range r.QueryStream(ctx, qs) {
		if br.Err != nil || br.Answer.Epoch != 1 {
			t.Fatalf("epoch-1 stream item %d: epoch %d err %v", i, br.Answer.Epoch, br.Err)
		}
	}

	// The owner mutates and the server swaps the new bundle in.
	res2 := mutated(t, res, 0)
	if err := srv.Swap(server.IFMH{Tree: res2.Tree}); err != nil {
		t.Fatal(err)
	}

	// /params serves the live epoch; /stats reports epoch and swaps.
	var p Params
	getJSON(t, ts.URL+"/params", &p)
	if p.Epoch != 2 {
		t.Errorf("/params epoch = %d, want 2", p.Epoch)
	}
	var stats struct {
		Epoch uint64 `json:"epoch"`
		Swaps int    `json:"swaps"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Epoch != 2 || stats.Swaps != 1 {
		t.Errorf("/stats epoch=%d swaps=%d, want 2/1", stats.Epoch, stats.Swaps)
	}

	// The pinned client now gets typed staleness errors, batch and
	// stream alike — not misleading verification failures.
	_, errs = r.QueryBatch(ctx, qs, backend.WithVerify(res.Public))
	for i := range qs {
		var ee *backend.EpochError
		if !errors.As(errs[i], &ee) || ee.Want != 1 || ee.Got != 2 {
			t.Fatalf("post-swap batch item %d: err = %v, want EpochError{1,2}", i, errs[i])
		}
	}
	for i, br := range r.QueryStream(ctx, qs) {
		var ee *backend.EpochError
		if !errors.As(br.Err, &ee) {
			t.Fatalf("post-swap stream item %d: err = %v, want EpochError", i, br.Err)
		}
	}

	// Recovery: refresh the pin, verify against the republished bundle.
	e, err := r.Client().Refresh(ctx)
	if err != nil || e != 2 {
		t.Fatalf("refresh: epoch %d, err %v", e, err)
	}
	answers, errs = r.QueryBatch(ctx, qs, backend.WithVerify(res2.Public))
	for i := range qs {
		if errs[i] != nil || answers[i].Epoch != 2 || len(answers[i].Records) == 0 {
			t.Fatalf("epoch-2 query %d: epoch %d, %d records, err %v",
				i, answers[i].Epoch, len(answers[i].Records), errs[i])
		}
	}
}

// getJSON fetches a JSON endpoint into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestKProcessEpochRaceUnderSwap is the multi-process half of the
// query-during-swap guarantee: K shard processes behind a
// vqfront-equivalent front-end are swapped to new epochs shard by
// shard — a rolling deployment — while clients hammer the batch and
// stream planes through the front-end. Every successful answer must
// verify against the published parameters of the exact epoch it is
// stamped with, every failure must be the typed staleness signal
// (recovered by Refresh), and the front-end's advertised epoch must
// converge to the rollout's target. Run under -race this also pins the
// relay path's pin tracking.
func TestKProcessEpochRaceUnderSwap(t *testing.T) {
	ctx := context.Background()
	const k = 3
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 90, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{Rand: sig.DeterministicRand(13)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := build.Outsource(ctx, build.Spec{
		Table: tbl, Template: funcs.AffineLine(0, 1), Domain: dom, Signer: signer,
	}, build.WithShuffle(13), build.WithShards(k, 0))
	if err != nil {
		t.Fatal(err)
	}
	// One vqserve-equivalent process per shard, handles kept for Swap.
	srvs := make([]*server.Server, k)
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		srv, err := server.New(server.IFMH{Tree: res.Set.Trees[i]})
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewIFMHHandler(srv, res.Set.Trees[i].Public())
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		srvs[i] = srv
		urls[i] = ts.URL
	}
	f, params, err := DialFanout(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	fh, err := NewBackendHandler(f, params)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(fh)
	t.Cleanup(front.Close)

	r, err := DialRemote(front.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 1 {
		t.Fatalf("front-end pinned epoch %d, want 1", r.Epoch())
	}

	var pubs sync.Map // epoch -> core.PublicParams, stored before any swap
	pubs.Store(uint64(1), res.Public)

	qs := make([]query.Query, 0, 9)
	for i := 0; i < 9; i++ {
		x := dom.Lo[0] + (dom.Hi[0]-dom.Lo[0])*float64(i+1)/10
		qs = append(qs, query.NewTopK(geometry.Point{x}, 1+i%3))
	}

	const lastEpoch = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // the owner: mutate once, then roll the swap across shards
		defer wg.Done()
		defer close(stop)
		cur := res
		for e := uint64(2); e <= lastEpoch; e++ {
			i := int(e) % tbl.Len()
			rows := cur.Set.Trees[0].Table().Records
			upd := rows[i]
			upd.Attrs = append([]float64(nil), upd.Attrs...)
			upd.Attrs[0] += 0.01
			next, err := build.Apply(ctx, cur, build.Update(i, upd))
			if err != nil {
				t.Errorf("apply to epoch %d: %v", e, err)
				return
			}
			pubs.Store(e, next.Public)
			for sh := 0; sh < k; sh++ { // rolling, shard by shard
				if err := srvs[sh].Swap(server.IFMH{Tree: next.Set.Trees[sh]}); err != nil {
					t.Errorf("swap shard %d to epoch %d: %v", sh, e, err)
					return
				}
			}
			cur = next
		}
	}()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			done := false
			for !done {
				select {
				case <-stop:
					done = true // one final pass after the rollout
				default:
				}
				stale := false
				check := func(i int, ans backend.Answer, err error) {
					if err != nil {
						var ee *backend.EpochError
						if !errors.As(err, &ee) {
							t.Errorf("query %d failed mid-rollout with a non-epoch error: %v", i, err)
						}
						stale = true
						return
					}
					pv, ok := pubs.Load(ans.Epoch)
					if !ok {
						t.Errorf("answer stamped with unpublished epoch %d", ans.Epoch)
						return
					}
					dec, derr := wire.DecodeIFMH(ans.Raw)
					if derr != nil {
						t.Errorf("epoch %d answer not decodable: %v", ans.Epoch, derr)
						return
					}
					if verr := core.Verify(pv.(core.PublicParams), qs[i], dec.Records, &dec.VO, nil); verr != nil {
						t.Errorf("answer does not verify against its own epoch %d: %v", ans.Epoch, verr)
					}
				}
				if w%2 == 0 {
					answers, errs := r.QueryBatch(ctx, qs)
					for i := range qs {
						check(i, answers[i], errs[i])
					}
				} else {
					for i, br := range r.QueryStream(ctx, qs) {
						check(i, br.Answer, br.Err)
					}
				}
				if stale {
					if _, err := r.Client().Refresh(ctx); err != nil {
						t.Errorf("refresh: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Convergence: one refresh against the settled deployment, then a
	// fully verified batch at the rollout's target epoch.
	e, err := r.Client().Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if e != lastEpoch {
		t.Fatalf("front-end advertises epoch %d after the rollout, want %d", e, lastEpoch)
	}
	pv, _ := pubs.Load(uint64(lastEpoch))
	answers, errs := r.QueryBatch(ctx, qs, backend.WithVerify(pv.(core.PublicParams)))
	for i := range qs {
		if errs[i] != nil || answers[i].Epoch != lastEpoch {
			t.Fatalf("settled query %d: epoch %d err %v", i, answers[i].Epoch, errs[i])
		}
	}
}
