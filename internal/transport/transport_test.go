package transport

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/mesh"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/server"
	"aqverify/internal/sig"
)

func fixtures(t *testing.T) (*server.Server, core.PublicParams, *server.Server, mesh.PublicParams, geometry.Box) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	recs := make([]record.Record, 30)
	for i := range recs {
		recs[i] = record.Record{ID: uint64(i + 1), Attrs: []float64{rng.NormFloat64(), rng.NormFloat64()}}
	}
	tbl, err := record.NewTable(record.Schema{
		Name:    "t",
		Columns: []record.Column{{Name: "a"}, {Name: "b"}},
	}, recs)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.ECDSA, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dom := geometry.MustBox([]float64{-1}, []float64{1})
	tpl := funcs.AffineLine(0, 1)
	tree, err := core.Build(tbl, core.Params{Mode: core.MultiSignature, Signer: signer, Domain: dom, Template: tpl})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mesh.Build(tbl, mesh.Params{Signer: signer, Domain: dom, Template: tpl})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.IFMH{Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	msrv, err := server.New(server.Mesh{M: m})
	if err != nil {
		t.Fatal(err)
	}
	return srv, tree.Public(), msrv, m.Public(), dom
}

func TestHTTPRoundTripIFMH(t *testing.T) {
	srv, pub, _, _, dom := fixtures(t)
	h, err := NewIFMHHandler(srv, pub)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	cli, err := Dial(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if cli.Backend() != "ifmh-multi" {
		t.Errorf("backend = %q", cli.Backend())
	}
	x := geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	for _, q := range []query.Query{
		query.NewTopK(x, 3),
		query.NewBottomK(x, 3),
		query.NewRange(x, -1, 1),
		query.NewKNN(x, 3, 0),
	} {
		recs, err := cli.Query(q)
		if err != nil {
			t.Fatalf("%v: %v", q.Kind, err)
		}
		if q.Kind != query.Range && len(recs) != 3 {
			t.Fatalf("%v: got %d records", q.Kind, len(recs))
		}
	}
	if !strings.Contains(cli.Stats().String(), "verifies") {
		t.Error("client stats missing")
	}
}

func TestHTTPRoundTripMesh(t *testing.T) {
	_, _, msrv, mpub, dom := fixtures(t)
	h, err := NewMeshHandler(msrv, mpub)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	cli, err := Dial(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	x := geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	recs, err := cli.Query(query.NewTopK(x, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records", len(recs))
	}
}

// tamperingProxy forwards to target but flips one bit in every /query
// and /query/batch response body.
type tamperingProxy struct {
	target *url.URL
	hc     *http.Client
}

func (p *tamperingProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	u := *p.target
	u.Path = r.URL.Path
	var resp *http.Response
	var err error
	if r.Method == http.MethodPost {
		resp, err = p.hc.Post(u.String(), r.Header.Get("Content-Type"), r.Body)
	} else {
		resp, err = p.hc.Get(u.String())
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	buf := make([]byte, 0, 1<<16)
	tmp := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if rerr != nil {
			break
		}
	}
	if strings.HasPrefix(r.URL.Path, "/query") && len(buf) > 0 {
		buf[len(buf)/3] ^= 0x10
	}
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	w.Write(buf)
}

func TestHTTPTamperingChannelRejected(t *testing.T) {
	srv, pub, _, _, dom := fixtures(t)
	h, err := NewIFMHHandler(srv, pub)
	if err != nil {
		t.Fatal(err)
	}
	origin := httptest.NewServer(h)
	defer origin.Close()
	target, err := url.Parse(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httptest.NewServer(&tamperingProxy{target: target, hc: origin.Client()})
	defer proxy.Close()

	cli, err := Dial(proxy.URL, proxy.Client())
	if err != nil {
		t.Fatal(err)
	}
	x := geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	for trial := 0; trial < 10; trial++ {
		if _, err := cli.Query(query.NewRange(x, -2, 2)); err == nil {
			t.Fatal("bit-flipped HTTP answer accepted")
		}
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	srv, pub, _, _, _ := fixtures(t)
	h, err := NewIFMHHandler(srv, pub)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Malformed query bytes.
	resp, err := ts.Client().Post(ts.URL+"/query", "application/octet-stream", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("junk query: status %d", resp.StatusCode)
	}
	// Out-of-domain query reaches the server and fails there.
	cli, err := Dial(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Query(query.NewTopK(geometry.Point{99}, 1)); err == nil {
		t.Error("out-of-domain query succeeded")
	}
	// Stats endpoint responds.
	resp, err = ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stats: status %d", resp.StatusCode)
	}
	// Dial against a non-server fails cleanly.
	if _, err := Dial("http://127.0.0.1:1", nil); err == nil {
		t.Error("Dial to dead address succeeded")
	}
}
