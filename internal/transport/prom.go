package transport

import (
	"bytes"
	"fmt"
	"log"
	"net/http"

	"aqverify/internal/metrics"
	"aqverify/internal/server"
)

// This file is the GET /metrics route: the serving tally, cache-plane
// counters and (on a front) the replica/hedge/shed gauges rendered as a
// Prometheus text exposition. The writer is hand-rolled in
// internal/metrics (no client library); family names are pinned by a
// golden file in internal/front's tests, so renames are deliberate
// wire-format changes, not refactors.

// refreshEpochGauges re-observes the backend's live epochs into the
// handler's own tally before a stats read. The tally's epoch gauges are
// seeded once at construction; a front's children swap epochs at their
// own pace, so /stats and /metrics re-read them at request time or the
// epoch-lag gauges would freeze at boot values.
func (h *Handler) refreshEpochGauges() {
	if h.tally == nil {
		return
	}
	if e, ok := h.b.(interface{ Epoch() uint64 }); ok {
		var per []uint64
		if es, ok := h.b.(interface{ Epochs() []uint64 }); ok {
			per = es.Epochs()
		}
		h.tally.ObserveEpoch(e.Epoch(), per)
	}
}

func (h *Handler) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	h.refreshEpochGauges()
	var buf bytes.Buffer
	p := metrics.NewProm(&buf)

	stats, n := h.stats.Stats()
	p.Family("aqv_queries_total", "counter", "Queries answered successfully.")
	p.Int("aqv_queries_total", nil, int64(n))
	p.Family("aqv_query_errors_total", "counter", "Queries refused or failed.")
	p.Int("aqv_query_errors_total", nil, int64(h.stats.ErrorCount()))
	p.Family("aqv_answer_bytes_total", "counter", "Wire bytes of served answers (VO sizes).")
	p.Int("aqv_answer_bytes_total", nil, int64(stats.Bytes))
	p.Family("aqv_nodes_visited_total", "counter", "IFMH tree nodes traversed answering queries.")
	p.Int("aqv_nodes_visited_total", nil, int64(stats.NodesVisited))
	p.Family("aqv_cells_visited_total", "counter", "Mesh cells scanned answering queries.")
	p.Int("aqv_cells_visited_total", nil, int64(stats.CellsVisited))
	p.Family("aqv_hashes_total", "counter", "Hash invocations spent answering queries.")
	p.Int("aqv_hashes_total", nil, int64(stats.Hashes))
	p.Family("aqv_sig_verifies_total", "counter", "Signature verifications spent answering queries.")
	p.Int("aqv_sig_verifies_total", nil, int64(stats.SigVerifies))

	epoch := h.params.Epoch
	if e, ok := h.b.(interface{ Epoch() uint64 }); ok {
		epoch = e.Epoch()
	}
	p.Family("aqv_epoch", "gauge", "Serving publication epoch.")
	p.Int("aqv_epoch", nil, int64(epoch))
	if sw, ok := h.stats.(interface{ Swaps() int }); ok {
		p.Family("aqv_swaps_total", "counter", "Epoch swaps observed.")
		p.Int("aqv_swaps_total", nil, int64(sw.Swaps()))
	}

	if ss := h.stats.ShardStats(); ss != nil {
		p.Family("aqv_shard_queries_total", "counter", "Queries answered, by shard.")
		p.Family("aqv_shard_errors_total", "counter", "Queries refused or failed, by shard.")
		p.Family("aqv_shard_epoch", "gauge", "Publication epoch served, by shard.")
		p.Family("aqv_shard_epoch_lag", "gauge", "Epochs the shard trails the serving epoch.")
		for i, s := range ss {
			l := []metrics.Label{{Name: "shard", Value: fmt.Sprint(i)}}
			p.Int("aqv_shard_queries_total", l, int64(s.Queries))
			p.Int("aqv_shard_errors_total", l, int64(s.Errors))
			p.Int("aqv_shard_epoch", l, int64(s.Epoch))
			p.Int("aqv_shard_epoch_lag", l, int64(s.Lag))
		}
	}

	if cs, ok := h.b.(interface{ CacheStats() server.CacheStats }); ok {
		writeCacheProm(p, cs.CacheStats())
	}
	if h.promSrc != nil {
		h.promSrc.WriteProm(p)
	}

	if err := p.Flush(); err != nil {
		http.Error(w, "render: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", metrics.PromContentType)
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Printf("transport: writing /metrics response: %v", err)
	}
}

func writeCacheProm(p *metrics.Prom, cs server.CacheStats) {
	p.Family("aqv_cache_hits_total", "counter", "Whole-answer cache hits.")
	p.Int("aqv_cache_hits_total", nil, cs.Hits)
	p.Family("aqv_cache_epoch_hits", "gauge", "Whole-answer cache hits against the current epoch (resets on swap).")
	p.Int("aqv_cache_epoch_hits", nil, cs.EpochHits)
	p.Family("aqv_cache_misses_total", "counter", "Whole-answer cache misses.")
	p.Int("aqv_cache_misses_total", nil, cs.Misses)
	p.Family("aqv_cache_collapses_total", "counter", "Queries that joined an identical in-flight query.")
	p.Int("aqv_cache_collapses_total", nil, cs.Collapses)
	p.Family("aqv_cache_evictions_total", "counter", "Whole-answer entries evicted by the LRU.")
	p.Int("aqv_cache_evictions_total", nil, cs.Evictions)
	p.Family("aqv_cache_perm_hits_total", "counter", "Permutation-tier cache hits.")
	p.Int("aqv_cache_perm_hits_total", nil, cs.PermHits)
	p.Family("aqv_cache_perm_misses_total", "counter", "Permutation-tier cache misses.")
	p.Int("aqv_cache_perm_misses_total", nil, cs.PermMisses)
	p.Family("aqv_cache_perm_evictions_total", "counter", "Permutation entries evicted by the LRU.")
	p.Int("aqv_cache_perm_evictions_total", nil, cs.PermEvictions)
}
