package transport

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"io"
	"iter"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aqverify/internal/backend"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/server"
	"aqverify/internal/shard"
	"aqverify/internal/sig"
	"aqverify/internal/wire"
	"aqverify/internal/workload"
)

// routeCounter wraps a handler and counts requests per path, so tests
// can pin which transport a client actually used.
type routeCounter struct {
	h  http.Handler
	mu sync.Mutex
	n  map[string]int
}

func newRouteCounter(h http.Handler) *routeCounter {
	return &routeCounter{h: h, n: map[string]int{}}
}

func (rc *routeCounter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rc.mu.Lock()
	rc.n[r.URL.Path]++
	rc.mu.Unlock()
	rc.h.ServeHTTP(w, r)
}

func (rc *routeCounter) count(path string) int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.n[path]
}

func streamBatch(dom geometry.Box, n int) []query.Query {
	rng := rand.New(rand.NewSource(11))
	qs := make([]query.Query, 0, n)
	for len(qs) < n {
		x := geometry.Point{dom.Lo[0] + rng.Float64()*(dom.Hi[0]-dom.Lo[0])}
		switch len(qs) % 4 {
		case 0:
			qs = append(qs, query.NewTopK(x, 1+rng.Intn(4)))
		case 1:
			qs = append(qs, query.NewRange(x, -2, 2))
		case 2:
			qs = append(qs, query.NewKNN(x, 1+rng.Intn(4), 0))
		default:
			// Refused: outside the owner's domain.
			qs = append(qs, query.NewTopK(geometry.Point{dom.Hi[0] + 5}, 2))
		}
	}
	return qs
}

// collectStream drains a stream into index-parallel slices, checking
// each index arrives exactly once.
func collectStream(t *testing.T, n int, seq iter.Seq2[int, backend.BatchResult]) ([]backend.Answer, []error) {
	t.Helper()
	answers := make([]backend.Answer, n)
	errs := make([]error, n)
	seen := make([]bool, n)
	for i, r := range seq {
		if i < 0 || i >= n {
			t.Fatalf("stream yielded index %d of a %d-batch", i, n)
		}
		if seen[i] {
			t.Fatalf("stream yielded index %d twice", i)
		}
		seen[i] = true
		answers[i], errs[i] = r.Answer, r.Err
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("stream never yielded index %d", i)
		}
	}
	return answers, errs
}

// TestRemoteStreamIdentity pins the wire-streamed results against the
// buffered batch exchange: same bytes, same verified records, same
// refusals — only the arrival order and the transport differ — and the
// caller-side byte accounting matches.
func TestRemoteStreamIdentity(t *testing.T) {
	srv, pub, _, _, dom := fixtures(t)
	h, err := NewIFMHHandler(srv, pub)
	if err != nil {
		t.Fatal(err)
	}
	rc := newRouteCounter(h)
	ts := httptest.NewServer(rc)
	defer ts.Close()
	remote, err := DialRemote(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !remote.Client().Streams() {
		t.Fatal("handler does not advertise the stream capability")
	}
	qs := streamBatch(dom, 24)
	ctx := context.Background()

	var bctr metrics.Counter
	wantAns, wantErrs := remote.QueryBatch(ctx, qs, backend.WithVerify(pub), backend.WithCounter(&bctr))

	var sctr metrics.Counter
	gotAns, gotErrs := collectStream(t, len(qs),
		remote.QueryStream(ctx, qs, backend.WithVerify(pub), backend.WithCounter(&sctr)))

	// The pooled verification path (workers > 1) must agree item for
	// item and byte for byte, including on this 1-CPU container where
	// the default pool would be serial.
	var pctr metrics.Counter
	poolAns, poolErrs := collectStream(t, len(qs),
		remote.QueryStream(ctx, qs, backend.WithVerify(pub), backend.WithCounter(&pctr), backend.WithWorkers(4)))
	for i := range qs {
		if (gotErrs[i] == nil) != (poolErrs[i] == nil) {
			t.Fatalf("query %d: serial err=%v, pooled err=%v", i, gotErrs[i], poolErrs[i])
		}
		if string(poolAns[i].Raw) != string(gotAns[i].Raw) || len(poolAns[i].Records) != len(gotAns[i].Records) {
			t.Fatalf("query %d: pooled verification diverged from serial", i)
		}
	}
	if pctr.Bytes != sctr.Bytes || pctr.SigVerifies != sctr.SigVerifies {
		t.Errorf("pooled counter (bytes=%d verifies=%d) != serial (bytes=%d verifies=%d)",
			pctr.Bytes, pctr.SigVerifies, sctr.Bytes, sctr.SigVerifies)
	}
	// An early break under the pooled path joins cleanly.
	got := 0
	for _, r := range remote.QueryStream(ctx, qs, backend.WithVerify(pub), backend.WithWorkers(4)) {
		_ = r
		got++
		break
	}
	if got != 1 {
		t.Fatalf("pooled early break consumed %d items", got)
	}

	for i := range qs {
		if (wantErrs[i] == nil) != (gotErrs[i] == nil) {
			t.Fatalf("query %d: batch err=%v, stream err=%v", i, wantErrs[i], gotErrs[i])
		}
		if wantErrs[i] != nil {
			continue
		}
		if string(gotAns[i].Raw) != string(wantAns[i].Raw) {
			t.Fatalf("query %d: streamed bytes differ from batched bytes", i)
		}
		if len(gotAns[i].Records) != len(wantAns[i].Records) {
			t.Fatalf("query %d: stream verified %d records, batch %d",
				i, len(gotAns[i].Records), len(wantAns[i].Records))
		}
		for j := range wantAns[i].Records {
			if gotAns[i].Records[j].ID != wantAns[i].Records[j].ID {
				t.Fatalf("query %d record %d: ID %d vs %d", i, j,
					gotAns[i].Records[j].ID, wantAns[i].Records[j].ID)
			}
		}
		if gotAns[i].Shard != wantAns[i].Shard {
			t.Fatalf("query %d: stream shard %d, batch shard %d", i, gotAns[i].Shard, wantAns[i].Shard)
		}
	}
	if sctr.Bytes != bctr.Bytes {
		t.Errorf("stream accounted %d answer bytes, batch %d", sctr.Bytes, bctr.Bytes)
	}
	if rc.count("/query/stream") != 3 {
		t.Errorf("POST /query/stream served %d times, want 3 (serial, pooled, early break)", rc.count("/query/stream"))
	}
}

// gateBackend is a controllable backend: queries with K == 1 answer
// immediately, every other query blocks on the gate. It keeps no stats
// of its own, so the HTTP handler tallies for it, and it hands the
// stream context out so tests can observe server-side cancellation.
type gateBackend struct {
	gate    chan struct{}
	started atomic.Int64
	ctxCh   chan context.Context
}

func newGateBackend() *gateBackend {
	return &gateBackend{gate: make(chan struct{}), ctxCh: make(chan context.Context, 1)}
}

func (g *gateBackend) process(q query.Query, ctr *metrics.Counter) (int, uint64, []byte, error) {
	g.started.Add(1)
	if q.K != 1 {
		<-g.gate
	}
	return wire.ShardNone, 0, []byte{0xA1, byte(q.K)}, nil
}

func (g *gateBackend) Name() string { return "ifmh-multi" }

func (g *gateBackend) Query(ctx context.Context, q query.Query, opts ...backend.Option) (backend.Answer, error) {
	return backend.DriveQuery(ctx, g.process, q, opts...)
}

func (g *gateBackend) QueryBatch(ctx context.Context, qs []query.Query, opts ...backend.Option) ([]backend.Answer, []error) {
	return backend.DriveBatch(ctx, g.process, qs, opts...)
}

func (g *gateBackend) QueryStream(ctx context.Context, qs []query.Query, opts ...backend.Option) iter.Seq2[int, backend.BatchResult] {
	select {
	case g.ctxCh <- ctx:
	default:
	}
	return backend.DriveStream(ctx, g.process, qs, opts...)
}

// gateParams builds a valid trust bundle around the fixture verifier so
// Dial accepts the gate backend's handler.
func gateParams(t *testing.T, pub core.PublicParams) Params {
	t.Helper()
	vb, err := sig.MarshalVerifier(pub.Verifier)
	if err != nil {
		t.Fatal(err)
	}
	return Params{
		Backend:  "ifmh-multi",
		Verifier: base64.StdEncoding.EncodeToString(vb),
		Template: toTplJSON(pub.Template),
	}
}

// TestStreamFirstItemBeforeLast proves the transport pipelines: the
// client observes the first streamed answer while every other query is
// still blocked inside the server. A buffered exchange cannot pass this
// test — the first yield would wait for the whole frame, which waits
// for the gate, which only opens after the first yield.
func TestStreamFirstItemBeforeLast(t *testing.T) {
	_, pub, _, _, _ := fixtures(t)
	g := newGateBackend()
	h, err := NewBackendHandler(g, gateParams(t, pub))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	remote, err := DialRemote(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}

	x := geometry.Point{0}
	qs := []query.Query{
		query.NewTopK(x, 1), // the fast lane
		query.NewTopK(x, 2),
		query.NewTopK(x, 3),
		query.NewTopK(x, 4),
	}
	watchdog := time.AfterFunc(30*time.Second, func() { close(g.gate) })
	defer watchdog.Stop()
	first := true
	for i, r := range remote.QueryStream(context.Background(), qs) {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if first {
			if !watchdog.Stop() {
				t.Fatal("first item only arrived after the watchdog opened the gate: the transport buffered")
			}
			if i != 0 {
				t.Fatalf("first streamed item is index %d, want the unblocked 0", i)
			}
			close(g.gate) // let the rest finish
			first = false
		}
	}
}

// TestStreamEarlyBreakCancelsServer pins the honest early break: a
// client that stops consuming closes the exchange, the server's request
// context cancels, the worker pool stops claiming queries, and the
// server tally records only what was delivered — not the full batch.
func TestStreamEarlyBreakCancelsServer(t *testing.T) {
	_, pub, _, _, _ := fixtures(t)
	g := newGateBackend()
	h, err := NewBackendHandler(g, gateParams(t, pub))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(w, r)
		if r.URL.Path == "/query/stream" {
			close(done)
		}
	}))
	defer ts.Close()
	remote, err := DialRemote(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}

	// One fast query, then far more gated ones than the server pool has
	// workers, so the pool cannot have started them all by the time the
	// cancellation lands.
	n := 2*runtime.GOMAXPROCS(0) + 8
	x := geometry.Point{0}
	qs := make([]query.Query, n)
	qs[0] = query.NewTopK(x, 1)
	for i := 1; i < n; i++ {
		qs[i] = query.NewTopK(x, 2)
	}

	got := 0
	for _, r := range remote.QueryStream(context.Background(), qs) {
		if r.Err != nil {
			t.Fatalf("first streamed item failed: %v", r.Err)
		}
		got++
		break // the honest early break
	}
	if got != 1 {
		t.Fatalf("consumed %d items before breaking, want 1", got)
	}

	// The break must cancel the server-side stream...
	var srvCtx context.Context
	select {
	case srvCtx = <-g.ctxCh:
	case <-time.After(10 * time.Second):
		t.Fatal("server never started streaming")
	}
	select {
	case <-srvCtx.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("client break never canceled the server-side context")
	}
	// ...so that once the in-flight queries drain, the pool has claimed
	// strictly fewer than the whole batch.
	close(g.gate)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream handler never returned")
	}
	if started := int(g.started.Load()); started >= n {
		t.Fatalf("server started all %d queries despite the early break", started)
	}

	// The server tally saw only delivered items.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Queries int `json:"queries"`
		Errors  int `json:"errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if total := stats.Queries + stats.Errors; total >= n {
		t.Fatalf("server tallied %d served queries for a broken stream of %d", total, n)
	}
}

// killAfterWrites tears a response down after max successful writes,
// emulating a server process dying mid-stream: the frames written so
// far reach the client, the rest of the stream never does, and the
// response body ends without a trailer.
type killAfterWrites struct {
	http.ResponseWriter
	writes, max int
}

func (kw *killAfterWrites) Write(b []byte) (int, error) {
	if kw.writes >= kw.max {
		return 0, errors.New("server died mid-stream")
	}
	kw.writes++
	return kw.ResponseWriter.Write(b)
}

func (kw *killAfterWrites) Flush() {
	if f, ok := kw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestFanoutStreamMidServerDeath kills one shard server mid-stream and
// pins the blast radius: exactly that shard's undelivered items fail
// (its delivered ones and the whole other shard survive), every index
// still yields exactly once, and the fanout's merge goroutines all
// exit.
func TestFanoutStreamMidServerDeath(t *testing.T) {
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 90, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{Rand: sig.DeterministicRand(9)})
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{
		Mode: core.MultiSignature, Signer: signer, Domain: dom,
		Template: funcs.AffineLine(0, 1), Shuffle: true, Seed: 4,
	}
	plan, err := shard.NewPlan(dom, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, 2)
	for i := 0; i < 2; i++ {
		tree, err := shard.BuildOne(tbl, p, plan, i)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.IFMH{Tree: tree})
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewIFMHHandler(srv, tree.Public())
		if err != nil {
			t.Fatal(err)
		}
		var hh http.Handler = h
		if i == 1 {
			// Shard 1 dies after the stream header plus one item frame.
			hh = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/query/stream" {
					h.ServeHTTP(&killAfterWrites{ResponseWriter: w, max: 2}, r)
					return
				}
				h.ServeHTTP(w, r)
			})
		}
		ts := httptest.NewServer(hh)
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	f, _, err := DialFanout(urls, nil)
	if err != nil {
		t.Fatal(err)
	}

	qs := streamBatch(dom, 32)
	owner := make([]int, len(qs))
	perShard := make([]int, 2)
	for i, q := range qs {
		owner[i] = -1
		if sh, err := f.Plan().Route(q.X); err == nil {
			owner[i] = sh
			perShard[sh]++
		}
	}
	if perShard[0] == 0 || perShard[1] < 2 {
		t.Fatalf("bad workload split %v: need both shards hit, shard 1 at least twice", perShard)
	}

	before := runtime.NumGoroutine()
	const rounds = 8
	for round := 0; round < rounds; round++ {
		answers, errs := collectStream(t, len(qs), f.QueryStream(context.Background(), qs))
		dead := 0
		for i := range qs {
			switch owner[i] {
			case -1: // unroutable by construction
				if errs[i] == nil {
					t.Fatalf("round %d: out-of-domain query %d succeeded", round, i)
				}
			case 0: // the healthy shard: everything arrives
				if errs[i] != nil {
					t.Fatalf("round %d: healthy-shard query %d failed: %v", round, i, errs[i])
				}
				if answers[i].Shard != 0 {
					t.Fatalf("round %d: query %d attributed to shard %d", round, i, answers[i].Shard)
				}
			case 1: // the dying shard: one delivered item, the rest fail as a stream error
				if errs[i] != nil {
					if !strings.Contains(errs[i].Error(), "stream") {
						t.Fatalf("round %d: query %d failed outside the stream: %v", round, i, errs[i])
					}
					dead++
				} else if answers[i].Shard != 1 {
					t.Fatalf("round %d: query %d attributed to shard %d", round, i, answers[i].Shard)
				}
			}
		}
		if want := perShard[1] - 1; dead != want {
			t.Fatalf("round %d: %d of shard 1's %d items failed, want exactly the %d undelivered",
				round, dead, perShard[1], want)
		}
	}
	// A per-round goroutine leak in the merge would accumulate across
	// the rounds; allow a little slack for idle HTTP connections.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+6 {
		time.Sleep(20 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before+6 {
		t.Errorf("goroutines grew from %d to %d across %d failed streams", before, now, rounds)
	}
}

// TestStreamFallbackToBatch pins both downgrade paths to old servers:
// a trust bundle without the stream capability never touches the
// route, and an advertised-but-missing route (404) falls back after
// one probe — either way the results match the buffered exchange.
func TestStreamFallbackToBatch(t *testing.T) {
	srv, pub, _, _, dom := fixtures(t)
	h, err := NewIFMHHandler(srv, pub)
	if err != nil {
		t.Fatal(err)
	}
	qs := streamBatch(dom, 12)
	ctx := context.Background()

	check := func(t *testing.T, remote *Remote, rc *routeCounter, wantProbe int) {
		t.Helper()
		wantAns, wantErrs := remote.QueryBatch(ctx, qs, backend.WithVerify(pub))
		gotAns, gotErrs := collectStream(t, len(qs), remote.QueryStream(ctx, qs, backend.WithVerify(pub)))
		for i := range qs {
			if (wantErrs[i] == nil) != (gotErrs[i] == nil) {
				t.Fatalf("query %d: batch err=%v, fallback err=%v", i, wantErrs[i], gotErrs[i])
			}
			if wantErrs[i] == nil && string(gotAns[i].Raw) != string(wantAns[i].Raw) {
				t.Fatalf("query %d: fallback bytes differ", i)
			}
		}
		if got := rc.count("/query/stream"); got != wantProbe {
			t.Errorf("POST /query/stream hit %d times, want %d", got, wantProbe)
		}
		if rc.count("/query/batch") < 2 {
			t.Errorf("buffered fallback never used POST /query/batch")
		}
	}

	t.Run("no capability", func(t *testing.T) {
		rc := newRouteCounter(h)
		ts := httptest.NewServer(rc)
		defer ts.Close()
		remote, err := DialRemote(ts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		// An old server's /params simply lacks the field.
		remote.Client().params.Stream = false
		check(t, remote, rc, 0)
	})

	t.Run("route missing", func(t *testing.T) {
		// The bundle advertises streaming but the route 404s (e.g. a
		// stripping proxy): the client probes once, then downgrades.
		rc := newRouteCounter(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/query/stream" {
				http.NotFound(w, r)
				return
			}
			h.ServeHTTP(w, r)
		}))
		ts := httptest.NewServer(rc)
		defer ts.Close()
		remote, err := DialRemote(ts.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		check(t, remote, rc, 1)
		// The downgrade latches: later streams skip the doomed probe.
		collectStream(t, len(qs), remote.QueryStream(ctx, qs))
		if got := rc.count("/query/stream"); got != 1 {
			t.Errorf("downgrade not cached: POST /query/stream hit %d times, want 1", got)
		}
	})
}

// TestQueryOversizeRequest is the regression for the silent-truncation
// bug: an over-limit POST /query body used to be cut at the limit and
// misreported as a 400 bad query; it is a 413 now, like the batch
// routes.
func TestQueryOversizeRequest(t *testing.T) {
	srv, pub, _, _, dom := fixtures(t)
	h, err := NewIFMHHandler(srv, pub)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	post := func(path string, body []byte) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/octet-stream", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Oversize: one byte past the limit must be a 413, not a truncated
	// parse failure.
	big := make([]byte, 1<<16+1)
	copy(big, wire.EncodeQuery(query.NewTopK(geometry.Point{dom.Lo[0]}, 1)))
	if got := post("/query", big); got != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize /query = %d, want 413", got)
	}
	if got := post("/query/stream", make([]byte, 1<<22+1)); got != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize /query/stream = %d, want 413", got)
	}
	// In-limit garbage is still a 400.
	if got := post("/query", []byte{0xFF, 1, 2}); got != http.StatusBadRequest {
		t.Errorf("bad /query = %d, want 400", got)
	}
	if got := post("/query/stream", []byte{0xFF, 1, 2}); got != http.StatusBadRequest {
		t.Errorf("bad /query/stream = %d, want 400", got)
	}
}

// TestClientCtxShims pins the cancellation satellite: the deprecated
// no-context entry points now thread a caller context through their
// ...Ctx variants, so legacy call shapes can finally cancel.
func TestClientCtxShims(t *testing.T) {
	srv, pub, _, _, dom := fixtures(t)
	h, err := NewIFMHHandler(srv, pub)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	cli, err := Dial(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := query.NewTopK(geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}, 2)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cli.QueryCtx(ctx, q); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryCtx on a canceled context: %v, want context.Canceled", err)
	}
	if _, err := cli.QueryBatchCtx(ctx, []query.Query{q}); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryBatchCtx on a canceled context: %v, want context.Canceled", err)
	}

	// The live paths still work.
	if recs, err := cli.QueryCtx(context.Background(), q); err != nil || len(recs) == 0 {
		t.Fatalf("live QueryCtx: recs=%d err=%v", len(recs), err)
	}
	results, err := cli.QueryBatchCtx(context.Background(), []query.Query{q})
	if err != nil || results[0].Err != nil {
		t.Fatalf("live QueryBatchCtx: err=%v item=%v", err, results)
	}
}
