// Package transport puts the outsourcing protocol on the network: an
// http.Handler exposing the cloud server's query endpoint plus the data
// owner's published parameters, and an HTTP client that fetches, parses
// and verifies answers. The data plane is the deterministic binary wire
// codec; the control plane (/params, /stats) is JSON.
//
// Endpoints:
//
//	POST /query        body: wire-encoded query        -> wire-encoded answer
//	POST /query/batch  body: wire-encoded query batch  -> wire-encoded answer batch
//	GET  /params       -> JSON trust bundle (scheme, verifier key, template, mode)
//	GET  /stats        -> JSON cumulative server metrics
//
// The batch endpoint carries many queries in one length-prefixed frame
// (see wire.EncodeQueryBatch) and answers them concurrently on the
// server; each item of the response is either that query's answer bytes
// or its error string, so one bad query never fails the batch. Against
// a domain-sharded server, batch items are grouped per shard before
// dispatch and each response item carries the answering shard's id
// (docs/WIRE.md specifies the byte layout); /params advertises the
// shard count and /stats the per-shard tallies. Routes are registered
// with Go 1.22 method patterns, so a wrong-method request is a 405,
// not a 404.
package transport

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"io"
	"log"
	"net/http"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/mesh"
	"aqverify/internal/server"
	"aqverify/internal/sig"
	"aqverify/internal/wire"
)

// maxQueryBytes bounds the request body; queries are tiny.
const maxQueryBytes = 1 << 16

// maxBatchBytes bounds a batched request body (many queries per frame).
const maxBatchBytes = 1 << 22

// Params is the JSON trust bundle the data owner publishes. Exactly one
// of IFMHMode ("one"/"multi") and MeshBaseline is meaningful, matching
// the backend.
type Params struct {
	Backend  string  `json:"backend"`  // "ifmh-one", "ifmh-multi", "mesh"
	Verifier string  `json:"verifier"` // base64 of sig.MarshalVerifier
	Template TplJSON `json:"template"`
	SemTol   float64 `json:"semTol,omitempty"`
	// Shards advertises the server's domain-shard count (0 or absent =
	// single tree). Informational: verification is shard-transparent.
	Shards int `json:"shards,omitempty"`
}

// TplJSON is the JSON form of a utility-function template.
type TplJSON struct {
	Name      string `json:"name"`
	CoefAttrs []int  `json:"coefAttrs"`
	BiasAttr  int    `json:"biasAttr"`
}

func toTplJSON(t funcs.Template) TplJSON {
	return TplJSON{Name: t.Name, CoefAttrs: t.CoefAttrs, BiasAttr: t.BiasAttr}
}

func fromTplJSON(t TplJSON) funcs.Template {
	return funcs.Template{Name: t.Name, CoefAttrs: t.CoefAttrs, BiasAttr: t.BiasAttr}
}

// Handler serves one outsourced database over HTTP.
type Handler struct {
	srv    *server.Server
	params Params
	mux    *http.ServeMux
}

// NewIFMHHandler wraps an IFMH-backed server.
func NewIFMHHandler(srv *server.Server, pub core.PublicParams) (*Handler, error) {
	vb, err := sig.MarshalVerifier(pub.Verifier)
	if err != nil {
		return nil, err
	}
	return newHandler(srv, Params{
		Backend:  srv.Name(),
		Verifier: base64.StdEncoding.EncodeToString(vb),
		Template: toTplJSON(pub.Template),
		SemTol:   pub.SemTol,
	})
}

// NewMeshHandler wraps a mesh-backed server.
func NewMeshHandler(srv *server.Server, pub mesh.PublicParams) (*Handler, error) {
	vb, err := sig.MarshalVerifier(pub.Verifier)
	if err != nil {
		return nil, err
	}
	return newHandler(srv, Params{
		Backend:  srv.Name(),
		Verifier: base64.StdEncoding.EncodeToString(vb),
		Template: toTplJSON(pub.Template),
		SemTol:   pub.SemTol,
	})
}

func newHandler(srv *server.Server, p Params) (*Handler, error) {
	p.Shards = srv.NumShards()
	h := &Handler{srv: srv, params: p, mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /query", h.handleQuery)
	h.mux.HandleFunc("POST /query/batch", h.handleBatch)
	h.mux.HandleFunc("GET /params", h.handleParams)
	h.mux.HandleFunc("GET /stats", h.handleStats)
	return h, nil
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	q, err := wire.DecodeQuery(body)
	if err != nil {
		http.Error(w, "bad query: "+err.Error(), http.StatusBadRequest)
		return
	}
	out, err := h.srv.Handle(q)
	if err != nil {
		http.Error(w, "query failed: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(out)
}

// handleBatch answers many queries in one exchange. The whole batch is
// decoded up front; the server fans the queries out across its worker
// pool, and every per-query failure travels inside the frame so the
// other answers still arrive.
func (h *Handler) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBytes+1))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxBatchBytes {
		http.Error(w, "batch request exceeds the size limit; split it", http.StatusRequestEntityTooLarge)
		return
	}
	qs, err := wire.DecodeQueryBatch(body)
	if err != nil {
		http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	outs, shards, errs := h.srv.HandleBatchShards(qs, 0)
	items := make([]wire.BatchAnswer, len(qs))
	for i := range qs {
		items[i].Shard = shards[i]
		if errs[i] != nil {
			items[i].Err = errs[i].Error()
		} else {
			items[i].Answer = outs[i]
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(wire.EncodeAnswerBatch(items))
}

func (h *Handler) handleParams(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, h.params)
}

func (h *Handler) handleStats(w http.ResponseWriter, _ *http.Request) {
	stats, n := h.srv.Stats()
	body := map[string]any{
		"backend":      h.srv.Name(),
		"queries":      n,
		"errors":       h.srv.ErrorCount(),
		"nodesVisited": stats.NodesVisited,
		"cellsVisited": stats.CellsVisited,
		"bytes":        stats.Bytes,
	}
	if ss := h.srv.ShardStats(); ss != nil {
		body["shards"] = len(ss)
		body["perShard"] = ss
	}
	writeJSON(w, body)
}

// writeJSON encodes v to a buffer first so an encoding failure can still
// surface as a 500 — once bytes hit the wire the status is committed —
// and sets Content-Type before any write. A failed response write is
// logged; there is no one left to report it to.
func writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, "encode: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Printf("transport: writing JSON response: %v", err)
	}
}
