// Package transport puts the outsourcing protocol on the network: an
// http.Handler exposing a query backend's endpoints plus the data
// owner's published parameters, and HTTP clients that fetch, parse and
// verify answers. The data plane is the deterministic binary wire
// codec; the control plane (/params, /stats) is JSON.
//
// Endpoints:
//
//	POST /query         body: wire-encoded query        -> wire-encoded answer
//	POST /query/batch   body: wire-encoded query batch  -> wire-encoded answer batch
//	POST /query/stream  body: wire-encoded query batch  -> pipelined answer stream
//	GET  /params        -> JSON trust bundle (scheme, verifier key, template, mode, domain)
//	GET  /stats         -> JSON cumulative server metrics
//
// The handler serves any backend.Backend — the metrics-keeping
// in-process server, one shard's tree of a multi-process deployment, or
// a backend.Fanout composing K remote shard servers (cmd/vqfront). The
// batch endpoint carries many queries in one length-prefixed frame
// (see wire.EncodeQueryBatch) and answers them concurrently on the
// server; each item of the response is either that query's answer bytes
// or its error string, so one bad query never fails the batch. The
// stream endpoint takes the same request frame but pipelines the
// response: item frames are written and flushed in completion order as
// the backend's QueryStream yields them, closed by a trailer that makes
// truncation detectable, so the client sees the first answer before the
// last one is computed and a client disconnect cancels the in-flight
// work through the request context. Against a domain-sharded server,
// batch items are grouped per shard before dispatch and each response
// item carries the answering shard's id (docs/WIRE.md specifies the
// byte layouts); /params advertises the shard count, the serving domain
// and the stream capability, and /stats the per-shard tallies. Routes
// are registered with Go 1.22 method patterns, so a wrong-method
// request is a 405, not a 404.
package transport

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"io"
	"log"
	"net/http"

	"aqverify/internal/backend"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/mesh"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/server"
	"aqverify/internal/sig"
	"aqverify/internal/wire"
)

// maxQueryBytes bounds the request body; queries are tiny.
const maxQueryBytes = 1 << 16

// maxBatchBytes bounds a batched request body (many queries per frame).
const maxBatchBytes = 1 << 22

// Params is the JSON trust bundle the data owner publishes. Exactly one
// of IFMHMode ("one"/"multi") and MeshBaseline is meaningful, matching
// the backend.
type Params struct {
	Backend  string  `json:"backend"`  // "ifmh-one", "ifmh-multi", "mesh"
	Verifier string  `json:"verifier"` // base64 of sig.MarshalVerifier
	Template TplJSON `json:"template"`
	SemTol   float64 `json:"semTol,omitempty"`
	// Shards advertises the server's domain-shard count (0 or absent =
	// single tree). Informational: verification is shard-transparent.
	Shards int `json:"shards,omitempty"`
	// Domain advertises the serving domain: the owner's full query
	// domain, or — when this server hosts one shard of a multi-process
	// deployment — that shard's sub-box. A routing front-end (vqfront)
	// reconstructs the shard plan from its backends' domains.
	Domain *BoxJSON `json:"domain,omitempty"`
	// Stream advertises POST /query/stream, the pipelined answer
	// transport. Absent on servers that predate it; clients fall back
	// to the buffered batch exchange.
	Stream bool `json:"stream,omitempty"`
	// Epoch advertises the serving publication epoch: 1 for a fresh
	// outsourcing, bumped by every mutation batch the owner applies and
	// the server swaps in. Absent (0) on pre-epoch backends — the mesh
	// baseline — and servers that predate the mutation plane. Clients
	// pin it at dial and compare it against the epoch word in every
	// batched or streamed answer, surfacing a mismatch as a typed
	// staleness error rather than a verification failure.
	Epoch uint64 `json:"epoch,omitempty"`
	// Artifact advertises the hex content hash of the on-disk artifact
	// this server serves from (or saved at boot) — the manifest's sealed
	// self-hash, one value for a whole K-shard set. Absent on servers
	// that built in memory without -save. DialFanout compares nonempty
	// hashes across a multi-process deployment and refuses a mix of
	// artifacts as an *ArtifactMismatchError.
	Artifact string `json:"artifact,omitempty"`
	// Provenance says how the serving bundle came to be: "built" (fresh
	// build.Outsource at boot) or "loaded" (reconstructed from an
	// artifact directory, vqserve -load). Informational — verification
	// is provenance-transparent.
	Provenance string `json:"provenance,omitempty"`
}

// TplJSON is the JSON form of a utility-function template.
type TplJSON struct {
	Name      string `json:"name"`
	CoefAttrs []int  `json:"coefAttrs"`
	BiasAttr  int    `json:"biasAttr"`
}

// BoxJSON is the JSON form of a bounded domain box.
type BoxJSON struct {
	Lo []float64 `json:"lo"`
	Hi []float64 `json:"hi"`
}

func toTplJSON(t funcs.Template) TplJSON {
	return TplJSON{Name: t.Name, CoefAttrs: t.CoefAttrs, BiasAttr: t.BiasAttr}
}

func fromTplJSON(t TplJSON) funcs.Template {
	return funcs.Template{Name: t.Name, CoefAttrs: t.CoefAttrs, BiasAttr: t.BiasAttr}
}

// ToBoxJSON converts a domain box to its JSON form.
func ToBoxJSON(b geometry.Box) *BoxJSON {
	return &BoxJSON{Lo: append([]float64(nil), b.Lo...), Hi: append([]float64(nil), b.Hi...)}
}

// Box converts back; nil yields (zero, false).
func (b *BoxJSON) Box() (geometry.Box, bool) {
	if b == nil {
		return geometry.Box{}, false
	}
	box, err := geometry.NewBox(b.Lo, b.Hi)
	if err != nil {
		return geometry.Box{}, false
	}
	return box, true
}

// statser is the stats surface /stats reports: either the served
// backend's own (the in-process server keeps one) or, for backends
// that keep no stats of their own (a Fanout front-end), a server.Tally
// the handler records into itself.
type statser interface {
	Stats() (metrics.Counter, int)
	ErrorCount() int
	ShardStats() []server.ShardStat
}

// admitter is the admission surface a served backend may expose — the
// front plane's bounded in-flight gate. The handler admits at the HTTP
// boundary, before any request frame is decoded, so an overloaded host
// answers every query route with a cheap 429 instead of queuing the
// work (and a stream is refused before its header commits the 200).
// release is deferred to the end of the exchange, so one admission
// covers a whole streamed response's lifetime.
type admitter interface {
	Admit() (release func(), err error)
}

// promSource lets a served backend append its own metric families to
// the handler's /metrics exposition (the front plane's hedge, replica
// and shed gauges).
type promSource interface {
	WriteProm(p *metrics.Prom)
}

// Handler serves one query backend over HTTP.
type Handler struct {
	b       backend.Backend
	stats   statser       // the backend's own stats, or h.tally
	tally   *server.Tally // non-nil when the handler tallies itself
	admit   admitter      // non-nil when the backend gates admission
	promSrc promSource    // non-nil when the backend adds /metrics families
	params  Params
	mux     *http.ServeMux
}

// NewIFMHHandler wraps an IFMH-backed server.
func NewIFMHHandler(srv *server.Server, pub core.PublicParams) (*Handler, error) {
	return NewIFMHHandlerFor(srv, srv, pub)
}

// NewIFMHHandlerFor serves b under srv's published parameter bundle —
// for decorated deployments where the backend answering queries wraps
// the server rather than being it (vqserve -cache fronts srv with
// cache.Wrap(srv), and the handler must serve the wrapper so hits skip
// the walk while /params still describes srv's bundle).
func NewIFMHHandlerFor(srv *server.Server, b backend.Backend, pub core.PublicParams) (*Handler, error) {
	p, err := IFMHParams(srv, pub)
	if err != nil {
		return nil, err
	}
	return NewBackendHandler(b, p)
}

// IFMHParams assembles the trust bundle an IFMH-backed server publishes
// — the building block behind NewIFMHHandler for deployments that add
// fields before constructing the handler (vqserve stamps the artifact
// content hash and provenance on it).
func IFMHParams(srv *server.Server, pub core.PublicParams) (Params, error) {
	vb, err := sig.MarshalVerifier(pub.Verifier)
	if err != nil {
		return Params{}, err
	}
	p := Params{
		Backend:  srv.Name(),
		Verifier: base64.StdEncoding.EncodeToString(vb),
		Template: toTplJSON(pub.Template),
		SemTol:   pub.SemTol,
		Shards:   srv.NumShards(),
	}
	if dom, ok := srv.Domain(); ok {
		p.Domain = ToBoxJSON(dom)
	}
	return p, nil
}

// NewMeshHandler wraps a mesh-backed server.
func NewMeshHandler(srv *server.Server, pub mesh.PublicParams) (*Handler, error) {
	vb, err := sig.MarshalVerifier(pub.Verifier)
	if err != nil {
		return nil, err
	}
	p := Params{
		Backend:  srv.Name(),
		Verifier: base64.StdEncoding.EncodeToString(vb),
		Template: toTplJSON(pub.Template),
		SemTol:   pub.SemTol,
		Shards:   srv.NumShards(),
	}
	if dom, ok := srv.Domain(); ok {
		p.Domain = ToBoxJSON(dom)
	}
	return NewBackendHandler(srv, p)
}

// NewBackendHandler serves any backend.Backend under the published
// parameter bundle — the generic constructor behind NewIFMHHandler and
// the vqfront front-end. When the backend keeps its own stats (the
// in-process server does), /stats reports them; otherwise the handler
// tallies served queries itself, attributing each answer to its
// reported shard.
func NewBackendHandler(b backend.Backend, p Params) (*Handler, error) {
	if p.Backend == "" {
		p.Backend = b.Name()
	}
	p.Stream = true // the handler always serves the pipelined route
	h := &Handler{b: b, params: p, mux: http.NewServeMux()}
	if st, ok := b.(statser); ok {
		h.stats = st
	} else {
		shards := 0
		if ns, ok := b.(interface{ NumShards() int }); ok {
			shards = ns.NumShards()
		}
		h.tally = server.NewTally(shards)
		h.stats = h.tally
		if e, ok := b.(interface{ Epoch() uint64 }); ok {
			var per []uint64
			if es, ok := b.(interface{ Epochs() []uint64 }); ok {
				per = es.Epochs()
			}
			h.tally.ObserveEpoch(e.Epoch(), per)
		}
	}
	// Optional surfaces may sit behind decorators (vqfront -cache wraps
	// the front plane in the cache tier), so walk the Inner chain: the
	// admission gate and the front gauges must keep working however the
	// serving stack is composed.
	h.admit = findAdmitter(b)
	h.promSrc = findPromSource(b)
	h.mux.HandleFunc("POST /query", h.handleQuery)
	h.mux.HandleFunc("POST /query/batch", h.handleBatch)
	h.mux.HandleFunc("POST /query/stream", h.handleStream)
	h.mux.HandleFunc("GET /params", h.handleParams)
	h.mux.HandleFunc("GET /stats", h.handleStats)
	h.mux.HandleFunc("GET /metrics", h.handleMetrics)
	return h, nil
}

// findAdmitter locates the admission gate in a decorated backend stack.
func findAdmitter(b backend.Backend) admitter {
	for cur := b; cur != nil; {
		if a, ok := cur.(admitter); ok {
			return a
		}
		in, ok := cur.(interface{ Inner() backend.Backend })
		if !ok {
			return nil
		}
		cur = in.Inner()
	}
	return nil
}

// findPromSource locates the extra-families source in a decorated
// backend stack.
func findPromSource(b backend.Backend) promSource {
	for cur := b; cur != nil; {
		if p, ok := cur.(promSource); ok {
			return p
		}
		in, ok := cur.(interface{ Inner() backend.Backend })
		if !ok {
			return nil
		}
		cur = in.Inner()
	}
	return nil
}

// admitOr runs the admission gate when the backend has one, answering
// 429 on refusal. The returned release is never nil; the caller defers
// it around the whole exchange.
func (h *Handler) admitOr(w http.ResponseWriter) (func(), bool) {
	if h.admit == nil {
		return func() {}, true
	}
	release, err := h.admit.Admit()
	if err != nil {
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return nil, false
	}
	return release, true
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	release, ok := h.admitOr(w)
	if !ok {
		return
	}
	defer release()
	// Read one byte past the limit so an oversize request is a 413, not
	// a silent truncation misreported as a 400 bad query.
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes+1))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxQueryBytes {
		http.Error(w, "query request exceeds the size limit", http.StatusRequestEntityTooLarge)
		return
	}
	q, err := wire.DecodeQuery(body)
	if err != nil {
		http.Error(w, "bad query: "+err.Error(), http.StatusBadRequest)
		return
	}
	var ctr metrics.Counter
	ans, err := h.b.Query(r.Context(), q, backend.WithCounter(&ctr))
	if h.tally != nil {
		h.tally.Record(ctr, ans.Shard, err)
	}
	if err != nil {
		http.Error(w, "query failed: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(ans.Raw)
}

// readBatchRequest reads and decodes the query-batch frame both batch
// routes take, writing the error response itself: 413 past the size
// limit (read limit+1, never silently truncate), 400 on a bad frame.
func readBatchRequest(w http.ResponseWriter, r *http.Request) ([]query.Query, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBytes+1))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if len(body) > maxBatchBytes {
		http.Error(w, "batch request exceeds the size limit; split it", http.StatusRequestEntityTooLarge)
		return nil, false
	}
	qs, err := wire.DecodeQueryBatch(body)
	if err != nil {
		http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	return qs, true
}

// handleBatch answers many queries in one exchange. The whole batch is
// decoded up front; the backend fans the queries out across its worker
// pool, and every per-query failure travels inside the frame so the
// other answers still arrive.
func (h *Handler) handleBatch(w http.ResponseWriter, r *http.Request) {
	release, ok := h.admitOr(w)
	if !ok {
		return
	}
	defer release()
	qs, ok := readBatchRequest(w, r)
	if !ok {
		return
	}
	var ctr metrics.Counter
	answers, errs := h.b.QueryBatch(r.Context(), qs, backend.WithCounter(&ctr))
	items := make([]wire.BatchAnswer, len(qs))
	for i := range qs {
		items[i] = batchItem(answers[i], errs[i])
		if h.tally != nil {
			h.tally.Count(answers[i].Shard, errs[i])
		}
	}
	if h.tally != nil {
		h.tally.AddCost(ctr)
	}
	frame, err := wire.EncodeAnswerBatch(items)
	if err != nil {
		http.Error(w, "encode: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(frame)
}

// batchItem converts one backend outcome into its wire item, carrying
// the status explicitly — a refusal stays a refusal even when its
// message renders empty — and the epoch the backend answered under
// (kept on refusals, like the shard, so attribution survives errors).
func batchItem(ans backend.Answer, err error) wire.BatchAnswer {
	if err != nil {
		return wire.NewRefusal(err.Error(), ans.Shard).AtEpoch(ans.Epoch)
	}
	return wire.NewAnswer(ans.Raw, ans.Shard).AtEpoch(ans.Epoch)
}

// handleStream answers a batch over the pipelined wire transport: the
// request is the same query-batch frame POST /query/batch takes, but
// the response is written frame by frame as the backend's QueryStream
// yields completions — header, one flushed item frame per outcome in
// completion order, then the trailer. A client that disconnects (or
// breaks out of its stream) cancels the remaining server-side work
// through r.Context(); the trailer is only written after a complete
// stream, so a dying server is always detectable as truncation.
func (h *Handler) handleStream(w http.ResponseWriter, r *http.Request) {
	// Admission precedes the stream header: once the 200 and header are
	// written there is no status left to shed with, so an overloaded
	// host refuses the whole stream here as a 429.
	release, ok := h.admitOr(w)
	if !ok {
		return
	}
	defer release()
	qs, ok := readBatchRequest(w, r)
	if !ok {
		return
	}
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := w.Write(wire.EncodeStreamHeader(len(qs))); err != nil {
		return
	}
	flush()
	var ctr metrics.Counter
	sent := 0
	for i, res := range h.b.QueryStream(r.Context(), qs, backend.WithCounter(&ctr)) {
		if r.Context().Err() != nil {
			break // client gone; stop writing, cancel the rest
		}
		frame, err := wire.EncodeStreamItem(i, batchItem(res.Answer, res.Err))
		if err != nil {
			break // unencodable outcome: close as a truncated stream
		}
		if _, err := w.Write(frame); err != nil {
			break
		}
		flush()
		// Tally what was actually delivered: items the disconnect
		// prevented never reach the stream and never count.
		if h.tally != nil {
			h.tally.Count(res.Answer.Shard, res.Err)
		}
		sent++
	}
	if sent == len(qs) {
		w.Write(wire.EncodeStreamTrailer(sent))
	}
	if h.tally != nil {
		h.tally.AddCost(ctr)
	}
}

// handleParams serves the trust bundle with the *live* serving epoch:
// the bundle fields are fixed at construction (verifier, template,
// domain never change across epochs of one database), but the epoch is
// read off the backend on every request, so a client re-reading /params
// after an epoch-mismatch error always sees the current epoch.
func (h *Handler) handleParams(w http.ResponseWriter, _ *http.Request) {
	p := h.params
	if e, ok := h.b.(interface{ Epoch() uint64 }); ok {
		p.Epoch = e.Epoch()
	}
	writeJSON(w, p)
}

func (h *Handler) handleStats(w http.ResponseWriter, _ *http.Request) {
	h.refreshEpochGauges()
	stats, n := h.stats.Stats()
	body := map[string]any{
		"backend":      h.b.Name(),
		"queries":      n,
		"errors":       h.stats.ErrorCount(),
		"nodesVisited": stats.NodesVisited,
		"cellsVisited": stats.CellsVisited,
		"bytes":        stats.Bytes,
	}
	if e, ok := h.b.(interface{ Epoch() uint64 }); ok {
		body["epoch"] = e.Epoch()
	} else {
		body["epoch"] = h.params.Epoch
	}
	if sw, ok := h.stats.(interface{ Swaps() int }); ok {
		body["swaps"] = sw.Swaps()
	}
	if ss := h.stats.ShardStats(); ss != nil {
		body["shards"] = len(ss)
		body["perShard"] = ss
	}
	if cs, ok := h.b.(interface{ CacheStats() server.CacheStats }); ok {
		body["cache"] = cs.CacheStats()
	}
	writeJSON(w, body)
}

// writeJSON encodes v to a buffer first so an encoding failure can still
// surface as a 500 — once bytes hit the wire the status is committed —
// and sets Content-Type before any write. A failed response write is
// logged; there is no one left to report it to.
func writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, "encode: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Printf("transport: writing JSON response: %v", err)
	}
}
