package transport

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"aqverify/internal/client"
	"aqverify/internal/core"
	"aqverify/internal/mesh"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/sig"
	"aqverify/internal/wire"
)

// maxAnswerBytes bounds response bodies the client will buffer.
const maxAnswerBytes = 64 << 20

// HTTPClient is a verifying data user over HTTP: it fetches the owner's
// trust bundle once, then verifies every answer locally before returning
// records. The HTTP connection is untrusted by construction — any
// tampering en route fails verification exactly like a lying server.
type HTTPClient struct {
	base string
	hc   *http.Client
	cli  *client.Client
	mode string
}

// Dial fetches /params from the base URL and prepares a verifying client.
func Dial(base string, hc *http.Client) (*HTTPClient, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	base = strings.TrimRight(base, "/")
	resp, err := hc.Get(base + "/params")
	if err != nil {
		return nil, fmt.Errorf("transport: fetch params: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("transport: params endpoint returned %s", resp.Status)
	}
	var p Params
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&p); err != nil {
		return nil, fmt.Errorf("transport: parse params: %w", err)
	}
	vb, err := base64.StdEncoding.DecodeString(p.Verifier)
	if err != nil {
		return nil, fmt.Errorf("transport: verifier encoding: %w", err)
	}
	ver, err := sig.UnmarshalVerifier(vb)
	if err != nil {
		return nil, err
	}
	tpl := fromTplJSON(p.Template)

	out := &HTTPClient{base: base, hc: hc, mode: p.Backend}
	switch p.Backend {
	case "ifmh-one", "ifmh-multi":
		mode := core.OneSignature
		if p.Backend == "ifmh-multi" {
			mode = core.MultiSignature
		}
		out.cli = client.NewIFMH(core.PublicParams{
			Verifier: ver, Template: tpl, Mode: mode, SemTol: p.SemTol,
		})
	case "mesh":
		out.cli = client.NewMesh(mesh.PublicParams{
			Verifier: ver, Template: tpl, SemTol: p.SemTol,
		})
	default:
		return nil, fmt.Errorf("transport: unknown backend %q", p.Backend)
	}
	return out, nil
}

// Backend returns the server's advertised backend name.
func (c *HTTPClient) Backend() string { return c.mode }

// Query sends q, verifies the answer, and returns the records. Every
// failure — network, malformed bytes, failed verification — is an error;
// no unverified record is ever returned.
func (c *HTTPClient) Query(q query.Query) ([]record.Record, error) {
	resp, err := c.hc.Post(c.base+"/query", "application/octet-stream",
		bytes.NewReader(wire.EncodeQuery(q)))
	if err != nil {
		return nil, fmt.Errorf("transport: post query: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxAnswerBytes))
	if err != nil {
		return nil, fmt.Errorf("transport: read answer: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("transport: server returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return c.cli.Check(q, body)
}

// Stats returns the client's cumulative verification metrics.
func (c *HTTPClient) Stats() interface{ String() string } {
	st := c.cli.Stats()
	return &st
}
