package transport

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"aqverify/internal/client"
	"aqverify/internal/core"
	"aqverify/internal/mesh"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/sig"
	"aqverify/internal/wire"
)

// maxAnswerBytes bounds response bodies the client will buffer.
const maxAnswerBytes = 64 << 20

// maxBatchAnswerBytes bounds a batched response body: a frame of many
// answers legitimately outgrows a single answer, and a silent
// truncation would fail the whole batch with an opaque parse error.
const maxBatchAnswerBytes = 512 << 20

// HTTPClient is a verifying data user over HTTP: it fetches the owner's
// trust bundle once, then verifies every answer locally before returning
// records. The HTTP connection is untrusted by construction — any
// tampering en route fails verification exactly like a lying server.
type HTTPClient struct {
	base   string
	hc     *http.Client
	cli    *client.Client
	mode   string
	shards int
}

// Dial fetches /params from the base URL and prepares a verifying client.
func Dial(base string, hc *http.Client) (*HTTPClient, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	base = strings.TrimRight(base, "/")
	resp, err := hc.Get(base + "/params")
	if err != nil {
		return nil, fmt.Errorf("transport: fetch params: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("transport: params endpoint returned %s", resp.Status)
	}
	var p Params
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&p); err != nil {
		return nil, fmt.Errorf("transport: parse params: %w", err)
	}
	vb, err := base64.StdEncoding.DecodeString(p.Verifier)
	if err != nil {
		return nil, fmt.Errorf("transport: verifier encoding: %w", err)
	}
	ver, err := sig.UnmarshalVerifier(vb)
	if err != nil {
		return nil, err
	}
	tpl := fromTplJSON(p.Template)

	out := &HTTPClient{base: base, hc: hc, mode: p.Backend, shards: p.Shards}
	switch p.Backend {
	case "ifmh-one", "ifmh-multi":
		mode := core.OneSignature
		if p.Backend == "ifmh-multi" {
			mode = core.MultiSignature
		}
		out.cli = client.NewIFMH(core.PublicParams{
			Verifier: ver, Template: tpl, Mode: mode, SemTol: p.SemTol,
		})
	case "mesh":
		out.cli = client.NewMesh(mesh.PublicParams{
			Verifier: ver, Template: tpl, SemTol: p.SemTol,
		})
	default:
		return nil, fmt.Errorf("transport: unknown backend %q", p.Backend)
	}
	return out, nil
}

// Backend returns the server's advertised backend name.
func (c *HTTPClient) Backend() string { return c.mode }

// Shards returns the server's advertised domain-shard count (0 = single
// tree). Verification is identical either way.
func (c *HTTPClient) Shards() int { return c.shards }

// Query sends q, verifies the answer, and returns the records. Every
// failure — network, malformed bytes, failed verification — is an error;
// no unverified record is ever returned.
func (c *HTTPClient) Query(q query.Query) ([]record.Record, error) {
	resp, err := c.hc.Post(c.base+"/query", "application/octet-stream",
		bytes.NewReader(wire.EncodeQuery(q)))
	if err != nil {
		return nil, fmt.Errorf("transport: post query: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxAnswerBytes+1))
	if err != nil {
		return nil, fmt.Errorf("transport: read answer: %w", err)
	}
	if len(body) > maxAnswerBytes {
		return nil, fmt.Errorf("transport: answer exceeds %d bytes", maxAnswerBytes)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("transport: server returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return c.cli.Check(q, body)
}

// QueryBatch sends all queries in one POST /query/batch exchange and
// verifies every answer locally, fanning the verification out across the
// CPUs. The result slice is parallel to qs: a per-item Err reports that
// query's server refusal or failed verification without aborting the
// rest. The returned error covers transport-level failures only —
// network errors, non-200 statuses, or a response frame that does not
// parse.
func (c *HTTPClient) QueryBatch(qs []query.Query) ([]client.BatchResult, error) {
	resp, err := c.hc.Post(c.base+"/query/batch", "application/octet-stream",
		bytes.NewReader(wire.EncodeQueryBatch(qs)))
	if err != nil {
		return nil, fmt.Errorf("transport: post batch: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBatchAnswerBytes+1))
	if err != nil {
		return nil, fmt.Errorf("transport: read batch answer: %w", err)
	}
	if len(body) > maxBatchAnswerBytes {
		return nil, fmt.Errorf("transport: batch answer exceeds %d bytes; split the batch", maxBatchAnswerBytes)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("transport: server returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	items, err := wire.DecodeAnswerBatch(body)
	if err != nil {
		return nil, fmt.Errorf("transport: parse batch answer: %w", err)
	}
	if len(items) != len(qs) {
		return nil, fmt.Errorf("transport: batch answered %d of %d queries", len(items), len(qs))
	}
	results := make([]client.BatchResult, len(qs))
	raws := make([][]byte, len(qs))
	for i, it := range items {
		results[i].Shard = it.Shard
		if it.Err != "" {
			results[i].Err = fmt.Errorf("transport: server refused query %d: %s", i, it.Err)
			continue
		}
		raws[i] = it.Answer
	}
	for i, r := range c.cli.CheckBatch(qs, raws, 0) {
		if results[i].Err == nil {
			results[i].Records, results[i].Err = r.Records, r.Err
		}
	}
	return results, nil
}

// Stats returns the client's cumulative verification metrics.
func (c *HTTPClient) Stats() interface{ String() string } {
	st := c.cli.Stats()
	return &st
}
