package transport

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"aqverify/internal/client"
	"aqverify/internal/core"
	"aqverify/internal/geometry"
	"aqverify/internal/mesh"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/sig"
	"aqverify/internal/wire"
)

// maxAnswerBytes bounds response bodies the client will buffer.
const maxAnswerBytes = 64 << 20

// maxBatchAnswerBytes bounds a batched response body: a frame of many
// answers legitimately outgrows a single answer, and a silent
// truncation would fail the whole batch with an opaque parse error.
const maxBatchAnswerBytes = 512 << 20

// HTTPClient is a verifying data user over HTTP: it fetches the owner's
// trust bundle once, then verifies every answer locally before returning
// records. The HTTP connection is untrusted by construction — any
// tampering en route fails verification exactly like a lying server.
// Remote wraps it into the unified backend.Backend query plane.
type HTTPClient struct {
	base   string
	hc     *http.Client
	cli    *client.Client
	params Params
	pub    *core.PublicParams // nil for mesh backends
	// epoch pins the publication epoch the client verified /params
	// against, compared to the epoch word of every batched or streamed
	// answer: a mismatch is a typed staleness signal (the server swapped
	// a mutated bundle in, or a replica lags), not a verification
	// failure. Refresh re-pins it; 0 disables the check (pre-epoch
	// servers).
	epoch atomic.Uint64
	// noStream latches a discovered downgrade: the bundle advertised
	// streaming but the route 404ed (e.g. a stripping proxy), so later
	// calls skip the doomed probe and go straight to the buffered
	// exchange.
	noStream atomic.Bool
}

// Dial fetches /params from the base URL and prepares a verifying client.
func Dial(base string, hc *http.Client) (*HTTPClient, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	base = strings.TrimRight(base, "/")
	resp, err := hc.Get(base + "/params")
	if err != nil {
		return nil, fmt.Errorf("transport: fetch params: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("transport: params endpoint returned %s", resp.Status)
	}
	var p Params
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&p); err != nil {
		return nil, fmt.Errorf("transport: parse params: %w", err)
	}
	vb, err := base64.StdEncoding.DecodeString(p.Verifier)
	if err != nil {
		return nil, fmt.Errorf("transport: verifier encoding: %w", err)
	}
	ver, err := sig.UnmarshalVerifier(vb)
	if err != nil {
		return nil, err
	}
	tpl := fromTplJSON(p.Template)

	out := &HTTPClient{base: base, hc: hc, params: p}
	out.epoch.Store(p.Epoch)
	switch p.Backend {
	case "ifmh-one", "ifmh-multi":
		mode := core.OneSignature
		if p.Backend == "ifmh-multi" {
			mode = core.MultiSignature
		}
		pub := core.PublicParams{
			Verifier: ver, Template: tpl, Mode: mode, SemTol: p.SemTol,
			Epoch: p.Epoch,
		}
		out.pub = &pub
		out.cli = client.NewIFMH(pub)
	case "mesh":
		out.cli = client.NewMesh(mesh.PublicParams{
			Verifier: ver, Template: tpl, SemTol: p.SemTol,
		})
	default:
		return nil, fmt.Errorf("transport: unknown backend %q", p.Backend)
	}
	return out, nil
}

// Backend returns the server's advertised backend name.
func (c *HTTPClient) Backend() string { return c.params.Backend }

// Base returns the base URL the client dialed, for error attribution in
// multi-server deployments (which replica failed, by name).
func (c *HTTPClient) Base() string { return c.base }

// Shards returns the server's advertised domain-shard count (0 = single
// tree). Verification is identical either way.
func (c *HTTPClient) Shards() int { return c.params.Shards }

// Streams reports whether the server advertises POST /query/stream, the
// pipelined answer transport, and has not since proven the route
// missing. Servers that predate it do not advertise, and clients fall
// back to the buffered batch exchange.
func (c *HTTPClient) Streams() bool { return c.params.Stream && !c.noStream.Load() }

// Params returns the server's advertised trust bundle as fetched at
// dial time. The live epoch is Epoch(), which Refresh re-pins.
func (c *HTTPClient) Params() Params { return c.params }

// Epoch returns the publication epoch the client has pinned — from the
// dial-time /params, or the last successful Refresh. 0 means the server
// is pre-epoch and staleness checking is off.
func (c *HTTPClient) Epoch() uint64 { return c.epoch.Load() }

// observeEpoch advances the pin to e if e is newer — the relay path
// (a front-end's child remote) tracks the newest epoch its shard has
// been seen serving instead of enforcing the dial-time pin.
func (c *HTTPClient) observeEpoch(e uint64) {
	for {
		cur := c.epoch.Load()
		if e <= cur || c.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Refresh re-reads /params and re-pins the serving epoch — the recovery
// step after a backend.EpochError: the owner applied a mutation batch
// and the server swapped the new bundle in, so the client refreshes its
// pin and re-queries. Only the epoch moves; the trust anchors (verifier
// key, template, domain) are fixed at dial, so a server that changes
// them mid-flight is refused rather than silently re-trusted.
func (c *HTTPClient) Refresh(ctx context.Context) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/params", nil)
	if err != nil {
		return 0, fmt.Errorf("transport: build request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("transport: refresh params: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("transport: params endpoint returned %s", resp.Status)
	}
	var p Params
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&p); err != nil {
		return 0, fmt.Errorf("transport: parse params: %w", err)
	}
	if p.Backend != c.params.Backend || p.Verifier != c.params.Verifier {
		return 0, fmt.Errorf("transport: server changed its identity (backend %q, was %q); re-dial to re-establish trust", p.Backend, c.params.Backend)
	}
	c.epoch.Store(p.Epoch)
	return p.Epoch, nil
}

// Artifact returns the hex content hash of the on-disk artifact the
// server serves from, or "" when it built in memory without saving one.
func (c *HTTPClient) Artifact() string { return c.params.Artifact }

// Provenance returns how the server's bundle came to be — "built" or
// "loaded" — or "" on servers that predate the artifact plane.
func (c *HTTPClient) Provenance() string { return c.params.Provenance }

// Domain returns the server's advertised serving domain, when it
// advertises one — a shard server of a multi-process deployment
// advertises its sub-box.
func (c *HTTPClient) Domain() (geometry.Box, bool) { return c.params.Domain.Box() }

// Public returns the IFMH verification parameters derived from the
// advertised bundle (zero for mesh backends).
func (c *HTTPClient) Public() (core.PublicParams, bool) {
	if c.pub == nil {
		return core.PublicParams{}, false
	}
	return *c.pub, true
}

// Query sends q, verifies the answer, and returns the records. Every
// failure — network, malformed bytes, failed verification — is an error;
// no unverified record is ever returned.
//
// Deprecated: use Remote, the unified query plane over this client,
// whose Query carries a context and per-call options; or QueryCtx when
// only cancellation is needed. This entry point remains as a thin shim
// over QueryCtx with a background context.
func (c *HTTPClient) Query(q query.Query) ([]record.Record, error) {
	return c.QueryCtx(context.Background(), q)
}

// QueryCtx is Query under a caller context: a canceled or expired ctx
// aborts the HTTP exchange and surfaces its error.
func (c *HTTPClient) QueryCtx(ctx context.Context, q query.Query) ([]record.Record, error) {
	raw, err := c.rawQuery(ctx, q)
	if err != nil {
		return nil, err
	}
	return c.cli.Check(q, raw)
}

// rawQuery posts one query and returns the serialized answer bytes,
// unverified. Transport failures and non-200 statuses are errors.
func (c *HTTPClient) rawQuery(ctx context.Context, q query.Query) ([]byte, error) {
	body, err := c.post(ctx, "/query", wire.EncodeQuery(q), maxAnswerBytes)
	if err != nil {
		return nil, err
	}
	return body, nil
}

// rawBatch posts a query batch in one exchange and returns the decoded
// per-item outcomes, unverified. The returned error covers
// transport-level failures only.
func (c *HTTPClient) rawBatch(ctx context.Context, qs []query.Query) ([]wire.BatchAnswer, error) {
	body, err := c.post(ctx, "/query/batch", wire.EncodeQueryBatch(qs), maxBatchAnswerBytes)
	if err != nil {
		return nil, err
	}
	items, err := wire.DecodeAnswerBatch(body)
	if err != nil {
		return nil, fmt.Errorf("transport: parse batch answer: %w", err)
	}
	if len(items) != len(qs) {
		return nil, fmt.Errorf("transport: batch answered %d of %d queries", len(items), len(qs))
	}
	return items, nil
}

// errStreamUnsupported reports a server that does not serve the
// pipelined POST /query/stream route; callers fall back to the buffered
// batch exchange.
var errStreamUnsupported = errors.New("transport: server does not stream")

// openStream posts a query batch to POST /query/stream and hands back
// the incremental frame decoder over the still-open response body, so
// items can be consumed as the server completes them. The caller owns
// the body and must close it — closing early is the honest way to break
// the stream, cancelling the server's in-flight work. A 404/405 from a
// server that predates the route maps to errStreamUnsupported.
func (c *HTTPClient) openStream(ctx context.Context, qs []query.Query) (*wire.StreamReader, io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/query/stream",
		bytes.NewReader(wire.EncodeQueryBatch(qs)))
	if err != nil {
		return nil, nil, fmt.Errorf("transport: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: post /query/stream: %w", err)
	}
	if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed {
		resp.Body.Close()
		c.noStream.Store(true) // don't pay the doomed probe again
		return nil, nil, errStreamUnsupported
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		return nil, nil, fmt.Errorf("transport: %s: %w", strings.TrimSpace(string(msg)), wire.ErrOverload)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		return nil, nil, fmt.Errorf("transport: server returned %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	sr, err := wire.NewStreamReader(resp.Body)
	if err != nil {
		resp.Body.Close()
		return nil, nil, fmt.Errorf("transport: answer stream: %w", err)
	}
	if sr.Count() != len(qs) {
		resp.Body.Close()
		return nil, nil, fmt.Errorf("transport: stream answers %d of %d queries", sr.Count(), len(qs))
	}
	return sr, resp.Body, nil
}

// post sends one octet-stream request and buffers up to limit response
// bytes; a non-200 status surfaces the server's message.
func (c *HTTPClient) post(ctx context.Context, path string, reqBody []byte, limit int64) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(reqBody))
	if err != nil {
		return nil, fmt.Errorf("transport: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("transport: post %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return nil, fmt.Errorf("transport: read answer: %w", err)
	}
	if int64(len(body)) > limit {
		return nil, fmt.Errorf("transport: answer exceeds %d bytes", limit)
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		// The host's admission gate shed the request before any work
		// started; surface the typed overload signal so callers can
		// retry elsewhere instead of treating it as a server fault.
		return nil, fmt.Errorf("transport: %s: %w", strings.TrimSpace(string(body)), wire.ErrOverload)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("transport: server returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// QueryBatch sends all queries in one POST /query/batch exchange and
// verifies every answer locally, fanning the verification out across the
// CPUs. The result slice is parallel to qs: a per-item Err reports that
// query's server refusal or failed verification without aborting the
// rest. The returned error covers transport-level failures only —
// network errors, non-200 statuses, or a response frame that does not
// parse.
//
// Deprecated: use Remote, whose QueryBatch carries a context and
// per-call options; or QueryBatchCtx when only cancellation is needed.
// This entry point remains as a thin shim over QueryBatchCtx with a
// background context.
func (c *HTTPClient) QueryBatch(qs []query.Query) ([]client.BatchResult, error) {
	return c.QueryBatchCtx(context.Background(), qs)
}

// QueryBatchCtx is QueryBatch under a caller context: a canceled or
// expired ctx aborts the HTTP exchange as one transport-level error, so
// no unverified frame is ever handed to the verification fan-out.
func (c *HTTPClient) QueryBatchCtx(ctx context.Context, qs []query.Query) ([]client.BatchResult, error) {
	items, err := c.rawBatch(ctx, qs)
	if err != nil {
		return nil, err
	}
	results := make([]client.BatchResult, len(qs))
	raws := make([][]byte, len(qs))
	for i, it := range items {
		results[i].Shard = it.Shard
		if it.Status == wire.StatusRefused {
			results[i].Err = fmt.Errorf("transport: server refused query %d: %s", i, it.Err)
			continue
		}
		raws[i] = it.Answer
	}
	for i, r := range c.cli.CheckBatch(qs, raws, 0) {
		if results[i].Err == nil {
			results[i].Records, results[i].Err = r.Records, r.Err
		}
	}
	return results, nil
}

// Stats returns the client's cumulative verification metrics.
func (c *HTTPClient) Stats() interface{ String() string } {
	st := c.cli.Stats()
	return &st
}
