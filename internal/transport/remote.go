package transport

import (
	"context"
	"fmt"
	"iter"
	"net/http"

	"aqverify/internal/backend"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/wire"
)

// Remote lifts an HTTPClient into the unified query plane: a vqserve
// process reached over HTTP becomes a backend.Backend, interchangeable
// with an in-process tree — and composable, K single-shard Remotes
// behind one backend.Fanout being the multi-process shard deployment.
//
// Answers are returned raw by default, exactly as they traveled;
// WithVerify(pub) checks each one against the owner's published
// parameters first, like every other backend. QueryBatch spends one
// HTTP exchange for the whole batch; QueryStream performs that same
// exchange and then yields the items in order (a pipelined wire
// transport is a roadmap item — the frame is buffered today).
type Remote struct {
	c *HTTPClient
}

// NewRemote wraps a dialed client.
func NewRemote(c *HTTPClient) (*Remote, error) {
	if c == nil {
		return nil, fmt.Errorf("transport: remote backend needs a dialed client")
	}
	return &Remote{c: c}, nil
}

// DialRemote dials the base URL and returns it as a backend.
func DialRemote(base string, hc *http.Client) (*Remote, error) {
	c, err := Dial(base, hc)
	if err != nil {
		return nil, err
	}
	return NewRemote(c)
}

// Client returns the underlying HTTP client.
func (r *Remote) Client() *HTTPClient { return r.c }

// Name implements backend.Backend, reporting the server's advertised
// backend name.
func (r *Remote) Name() string { return r.c.Backend() }

// Query implements backend.Backend.
func (r *Remote) Query(ctx context.Context, q query.Query, opts ...backend.Option) (backend.Answer, error) {
	return backend.DriveQuery(ctx, func(q query.Query, ctr *metrics.Counter) (int, []byte, error) {
		raw, err := r.c.rawQuery(ctx, q)
		ctr.AddBytes(uint64(len(raw)))
		return wire.ShardNone, raw, err
	}, q, opts...)
}

// QueryBatch implements backend.Backend: the whole batch travels in one
// POST /query/batch exchange, per-item failures travel inside the frame,
// and verification (when requested) fans out locally. A transport-level
// failure — network error, non-200 status, unparseable frame — fails
// every item.
func (r *Remote) QueryBatch(ctx context.Context, qs []query.Query, opts ...backend.Option) ([]backend.Answer, []error) {
	answers := make([]backend.Answer, len(qs))
	errs := make([]error, len(qs))
	if len(qs) == 0 {
		return answers, errs
	}
	items, err := r.c.rawBatch(ctx, qs)
	if err != nil {
		for i := range errs {
			answers[i].Shard = wire.ShardNone
			errs[i] = err
		}
		return answers, errs
	}
	for i, it := range items {
		answers[i].Shard = it.Shard
		if it.Err != "" {
			errs[i] = fmt.Errorf("transport: server refused query %d: %s", i, it.Err)
			continue
		}
		answers[i].Raw = it.Answer
	}
	backend.FinishBatch(ctx, qs, answers, errs, opts...)
	return answers, errs
}

// QueryStream implements backend.Backend over the batch exchange: one
// round trip, then the items yield in index order.
func (r *Remote) QueryStream(ctx context.Context, qs []query.Query, opts ...backend.Option) iter.Seq2[int, backend.BatchResult] {
	return func(yield func(int, backend.BatchResult) bool) {
		answers, errs := r.QueryBatch(ctx, qs, opts...)
		for i := range qs {
			if !yield(i, backend.BatchResult{Answer: answers[i], Err: errs[i]}) {
				return
			}
		}
	}
}
