package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"net/http"
	"sync"

	"aqverify/internal/backend"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/wire"
)

// Remote lifts an HTTPClient into the unified query plane: a vqserve
// process reached over HTTP becomes a backend.Backend, interchangeable
// with an in-process tree — and composable, K single-shard Remotes
// behind one backend.Fanout being the multi-process shard deployment.
//
// Answers are returned raw by default, exactly as they traveled;
// WithVerify(pub) checks each one against the owner's published
// parameters first, like every other backend. QueryBatch spends one
// HTTP exchange for the whole batch; QueryStream opens the pipelined
// POST /query/stream exchange and yields each item — verified as it
// lands, under WithVerify, across the WithWorkers pool when one is
// requested — the moment its frame arrives, in completion order.
// Against a server that predates the route (no /params capability, or
// a 404) it falls back to the buffered batch exchange.
type Remote struct {
	c *HTTPClient
	// relay disables pin enforcement: a front-end's child remote
	// forwards every answer with its epoch stamp intact — the end
	// client, not the relay, holds the pin — and tracks the newest
	// epoch seen so the composed /params stays current across the
	// shard's swaps. Set by DialFanout.
	relay bool
}

// NewRemote wraps a dialed client.
func NewRemote(c *HTTPClient) (*Remote, error) {
	if c == nil {
		return nil, fmt.Errorf("transport: remote backend needs a dialed client")
	}
	return &Remote{c: c}, nil
}

// DialRemote dials the base URL and returns it as a backend.
func DialRemote(base string, hc *http.Client) (*Remote, error) {
	c, err := Dial(base, hc)
	if err != nil {
		return nil, err
	}
	return NewRemote(c)
}

// Client returns the underlying HTTP client.
func (r *Remote) Client() *HTTPClient { return r.c }

// Relay switches the remote into relay mode: answers forward with their
// epoch stamps intact (the end client holds the pin, not this hop) and
// the newest epoch seen is tracked for the composed /params. Called by
// DialFanout and front.DialFront at composition time, before the remote
// serves traffic; it is not synchronized for later use.
func (r *Remote) Relay() { r.relay = true }

// RemoteError wraps a transport-level failure — network error, non-200
// status, unparseable frame — with the base URL of the server that
// failed, so a composed deployment (fanout, replica set) can name the
// replica at fault and classify the failure (errors.As) for failover.
// Per-item outcomes that traveled inside a healthy exchange (refusals,
// epoch mismatches, failed verification) are never wrapped: the server
// answered, it is not at fault at the transport level.
type RemoteError struct {
	URL string
	Err error
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: backend %s: %v", e.URL, e.Err)
}

func (e *RemoteError) Unwrap() error { return e.Err }

// wrapErr attributes a transport-level failure to this remote's URL.
func (r *Remote) wrapErr(err error) error {
	if err == nil {
		return nil
	}
	return &RemoteError{URL: r.c.base, Err: err}
}

// Name implements backend.Backend, reporting the server's advertised
// backend name.
func (r *Remote) Name() string { return r.c.Backend() }

// Epoch returns the publication epoch the client pinned at dial (or
// last Refresh); 0 for pre-epoch servers.
func (r *Remote) Epoch() uint64 { return r.c.Epoch() }

// epochErr checks one wire item against the pinned epoch: a nonzero
// item epoch that disagrees with a nonzero pin is the typed staleness
// signal — the server swapped a mutated bundle in since the pin, or a
// lagging replica answered. The caller surfaces it instead of the
// answer; HTTPClient.Refresh re-pins and the query can be retried.
func (r *Remote) epochErr(it wire.BatchAnswer) error {
	pin := r.c.Epoch()
	if it.Epoch == 0 || pin == 0 || it.Epoch == pin {
		return nil
	}
	if r.relay {
		r.c.observeEpoch(it.Epoch)
		return nil
	}
	return &backend.EpochError{Want: pin, Got: it.Epoch, Shard: it.Shard}
}

// Query implements backend.Backend. The single-query exchange carries
// no epoch word (the answer body is the bare wire answer), so the
// answer is stamped with the session's pinned epoch — a pinned client's
// single answers belong to that session by contract. Staleness
// detection applies to the batch and stream exchanges, whose frames
// carry the server's actual epoch.
func (r *Remote) Query(ctx context.Context, q query.Query, opts ...backend.Option) (backend.Answer, error) {
	return backend.DriveQuery(ctx, func(q query.Query, ctr *metrics.Counter) (int, uint64, []byte, error) {
		raw, err := r.c.rawQuery(ctx, q)
		ctr.AddBytes(uint64(len(raw)))
		return wire.ShardNone, r.c.Epoch(), raw, r.wrapErr(err)
	}, q, opts...)
}

// QueryBatch implements backend.Backend: the whole batch travels in one
// POST /query/batch exchange, per-item failures travel inside the frame,
// and verification (when requested) fans out locally. A transport-level
// failure — network error, non-200 status, unparseable frame — fails
// every item.
func (r *Remote) QueryBatch(ctx context.Context, qs []query.Query, opts ...backend.Option) ([]backend.Answer, []error) {
	answers := make([]backend.Answer, len(qs))
	errs := make([]error, len(qs))
	if len(qs) == 0 {
		return answers, errs
	}
	items, err := r.c.rawBatch(ctx, qs)
	if err != nil {
		err = r.wrapErr(err)
		for i := range errs {
			answers[i].Shard = wire.ShardNone
			errs[i] = err
		}
		return answers, errs
	}
	for i, it := range items {
		answers[i].Shard = it.Shard
		answers[i].Epoch = it.Epoch
		if it.Status == wire.StatusRefused {
			errs[i] = fmt.Errorf("transport: server refused query %d: %s", i, it.Err)
			continue
		}
		if err := r.epochErr(it); err != nil {
			errs[i] = err
			continue
		}
		answers[i].Raw = it.Answer
	}
	backend.FinishBatch(ctx, qs, answers, errs, opts...)
	return answers, errs
}

// QueryStream implements backend.Backend over the pipelined wire
// transport: the batch travels in one POST /query/stream exchange whose
// response is decoded frame by frame off the open body, so each item
// yields — verified first, under WithVerify — as the server completes
// it, in completion order, with the first result observable before the
// last one is computed. Breaking out of the iteration closes the body
// and cancels the request, which cancels the server's in-flight work. A
// mid-stream transport failure (the server died, the frame stream is
// truncated or malformed) fails exactly the items that had not yet been
// delivered. Servers that predate the route — no /params capability, or
// a 404/405 on the post — are answered through the buffered batch
// exchange instead, yielding in index order.
func (r *Remote) QueryStream(ctx context.Context, qs []query.Query, opts ...backend.Option) iter.Seq2[int, backend.BatchResult] {
	return func(yield func(int, backend.BatchResult) bool) {
		if len(qs) == 0 {
			return
		}
		if !r.c.Streams() {
			r.streamBuffered(ctx, qs, opts, yield)
			return
		}
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		sr, body, err := r.c.openStream(ctx, qs)
		if errors.Is(err, errStreamUnsupported) {
			r.streamBuffered(ctx, qs, opts, yield)
			return
		}
		delivered := make([]bool, len(qs))
		if err != nil {
			failUndelivered(delivered, r.wrapErr(err), yield)
			return
		}
		defer body.Close()
		fin := backend.NewFinisher(opts...)
		if workers := fin.Workers(len(qs)); fin.Verifies() && workers > 1 {
			// Per-item verification is real work; overlap it with the
			// network and with itself across the requested pool.
			r.streamVerifyPool(ctx, cancel, sr, qs, opts, workers, yield)
			return
		}
		defer fin.Flush()
		for {
			item, err := sr.Next()
			if errors.Is(err, io.EOF) {
				return // strict trailer: every item was delivered
			}
			if err != nil {
				failUndelivered(delivered, r.wrapErr(fmt.Errorf("transport: answer stream: %w", err)), yield)
				return
			}
			delivered[item.Index] = true
			if !yield(item.Index, r.streamResultOf(fin, qs, item)) {
				return // deferred close + cancel abort the server side
			}
		}
	}
}

// streamResultOf converts one decoded item frame into the consumer's
// result, finishing (byte accounting and, under WithVerify, in-place
// verification) answered items after the epoch check. A failed
// verification or epoch mismatch keeps the shard and epoch attribution
// and drops the bytes, per the Answer contract.
func (r *Remote) streamResultOf(fin *backend.Finisher, qs []query.Query, item wire.StreamItem) backend.BatchResult {
	res := backend.BatchResult{Answer: backend.Answer{Shard: item.Ans.Shard, Epoch: item.Ans.Epoch}}
	if item.Ans.Status == wire.StatusRefused {
		res.Err = fmt.Errorf("transport: server refused query %d: %s", item.Index, item.Ans.Err)
		return res
	}
	if err := r.epochErr(item.Ans); err != nil {
		res.Err = err
		return res
	}
	res.Answer.Raw = item.Ans.Answer
	if err := fin.Finish(qs[item.Index], &res.Answer); err != nil {
		return backend.BatchResult{Answer: backend.Answer{Shard: item.Ans.Shard, Epoch: item.Ans.Epoch}, Err: err}
	}
	return res
}

// streamVerifyPool drains the frame decoder through a bounded
// verification pool: one reader goroutine decodes frames off the open
// body as they arrive, the workers verify them concurrently (each into
// its own Finisher, flushed serially after the join, keeping the
// WithCounter single-goroutine contract), and the consumer yields
// verification-completion order. An early break cancels the request,
// which aborts the body read and unwinds reader and workers; a
// mid-stream transport failure fails exactly the items not yet yielded.
func (r *Remote) streamVerifyPool(ctx context.Context, cancel context.CancelFunc, sr *wire.StreamReader,
	qs []query.Query, opts []backend.Option, workers int, yield func(int, backend.BatchResult) bool) {
	type indexed struct {
		i int
		r backend.BatchResult
	}
	frames := make(chan wire.StreamItem)
	results := make(chan indexed)
	finishers := make([]*backend.Finisher, workers)
	for w := range finishers {
		finishers[w] = backend.NewFinisher(opts...)
	}
	var rerr error // written by the reader, read after results closes
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // reader
		defer wg.Done()
		defer close(frames)
		for {
			item, err := sr.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				rerr = r.wrapErr(fmt.Errorf("transport: answer stream: %w", err))
				return
			}
			select {
			case frames <- item:
			case <-ctx.Done():
				rerr = ctx.Err()
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for item := range frames {
				select {
				case results <- indexed{item.Index, r.streamResultOf(finishers[w], qs, item)}:
				case <-ctx.Done():
					return
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(results) }()

	// Consume until the pool drains; keep draining after a break so the
	// join (and the counter flush) always happens on this goroutine.
	delivered := make([]bool, len(qs))
	broke := false
	for item := range results {
		if broke {
			continue
		}
		delivered[item.i] = true
		if !yield(item.i, item.r) {
			broke = true
			cancel() // aborts the body read, unblocking the reader
		}
	}
	for _, f := range finishers {
		f.Flush()
	}
	if broke {
		return
	}
	if rerr != nil {
		failUndelivered(delivered, rerr, yield)
	}
}

// streamBuffered is the fallback stream: one buffered batch exchange,
// yielded in index order — exactly what QueryStream did before the
// pipelined transport existed.
func (r *Remote) streamBuffered(ctx context.Context, qs []query.Query, opts []backend.Option, yield func(int, backend.BatchResult) bool) {
	answers, errs := r.QueryBatch(ctx, qs, opts...)
	for i := range qs {
		if !yield(i, backend.BatchResult{Answer: answers[i], Err: errs[i]}) {
			return
		}
	}
}

// failUndelivered yields err for every index the stream had not
// delivered when it failed: a transport-level failure costs exactly the
// undelivered items, never the ones already yielded.
func failUndelivered(delivered []bool, err error, yield func(int, backend.BatchResult) bool) {
	for i, done := range delivered {
		if done {
			continue
		}
		if !yield(i, backend.BatchResult{Answer: backend.Answer{Shard: wire.ShardNone}, Err: err}) {
			return
		}
	}
}
