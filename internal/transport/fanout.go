package transport

import (
	"fmt"
	"net/http"
	"sort"

	"aqverify/internal/backend"
	"aqverify/internal/geometry"
	"aqverify/internal/shard"
)

// DialFanout dials every shard server of a multi-process deployment,
// recovers the shard plan from the advertised serving domains (each
// vqserve -shard i publishes its sub-box on /params), and composes the
// remotes into a backend.Fanout. urls may list the backends in any
// order; the slice is reordered in place into shard order (left to
// right along the cut axis), index-aligned with the fanout's shards.
// Every backend must advertise the same backend name, verifier key and
// template — one logical database, one owner.
//
// The returned Params is the merged trust bundle the front-end
// republishes on its own /params: the dialed bundle with the joined
// domain and the shard count substituted, so a verifying client dials
// the front-end exactly as it would dial a single vqserve.
func DialFanout(urls []string, hc *http.Client) (*backend.Fanout, Params, error) {
	if len(urls) == 0 {
		return nil, Params{}, fmt.Errorf("transport: no backends given")
	}
	type dialed struct {
		url    string
		remote *Remote
		box    geometry.Box
		params Params
	}
	ds := make([]dialed, len(urls))
	for i, u := range urls {
		r, err := DialRemote(u, hc)
		if err != nil {
			return nil, Params{}, &RemoteError{URL: u, Err: err}
		}
		box, ok := r.Client().Domain()
		if !ok {
			return nil, Params{}, fmt.Errorf("transport: backend %s does not advertise its serving domain; run a current vqserve", u)
		}
		ds[i] = dialed{url: u, remote: r, box: box, params: r.Client().Params()}
	}
	for _, d := range ds[1:] {
		if err := CheckSameBundle(d.url, d.params, ds[0].url, ds[0].params); err != nil {
			return nil, Params{}, err
		}
	}
	// Shards serving from artifacts must serve shards of the *same*
	// artifact set: the manifest hash is one value for the whole set, so
	// two different nonempty hashes mean two different publications
	// composed into one façade. A mix of built (no hash) and loaded
	// shards is allowed — a rolling redeploy looks like that.
	var anchor *dialed
	for i := range ds {
		if ds[i].params.Artifact == "" {
			continue
		}
		if anchor == nil {
			anchor = &ds[i]
			continue
		}
		if ds[i].params.Artifact != anchor.params.Artifact {
			return nil, Params{}, &ArtifactMismatchError{
				URL: ds[i].url, Hash: ds[i].params.Artifact,
				OtherURL: anchor.url, OtherHash: anchor.params.Artifact,
			}
		}
	}
	// Shard order = ascending corner order; for a one-axis split this is
	// the left-to-right order PlanFromBoxes requires.
	sort.SliceStable(ds, func(i, j int) bool {
		for d := range ds[i].box.Lo {
			if ds[i].box.Lo[d] != ds[j].box.Lo[d] {
				return ds[i].box.Lo[d] < ds[j].box.Lo[d]
			}
		}
		return false
	})
	boxes := make([]geometry.Box, len(ds))
	kids := make([]backend.Backend, len(ds))
	for i, d := range ds {
		// Child remotes relay: the end client holds the epoch pin; the
		// front-end forwards answers with their epoch stamps intact and
		// keeps each child's observed epoch current across shard swaps.
		d.remote.relay = true
		boxes[i] = d.box
		kids[i] = d.remote
		urls[i] = d.url
	}
	plan, err := shard.PlanFromBoxes(boxes)
	if err != nil {
		return nil, Params{}, fmt.Errorf("transport: recovering the shard plan: %w", err)
	}
	f, err := backend.NewFanout(plan, kids)
	if err != nil {
		return nil, Params{}, err
	}
	params := ds[0].params
	params.Shards = plan.K()
	params.Domain = ToBoxJSON(plan.Domain)
	// The front-end advertises the newest epoch any shard serves — the
	// owner publishes monotonically, so the maximum is authoritative;
	// per-shard lag during a rollout shows on the front-end's /stats.
	// The handler reads the live value off Fanout.Epoch at request time.
	params.Epoch = f.Epoch()
	return f, params, nil
}

// ArtifactMismatchError reports two shard servers of one deployment
// advertising different artifact content hashes on /params: their trees
// come from different saved publications, and composing them would
// serve a database no single owner build produced. DialFanout returns
// it so operators see which two backends disagree by name.
type ArtifactMismatchError struct {
	URL, Hash           string // the backend that broke the match
	OtherURL, OtherHash string // the first artifact-serving backend dialed
}

func (e *ArtifactMismatchError) Error() string {
	return fmt.Sprintf("transport: backend %s serves artifact %.12s…, %s serves %.12s…; shard servers must load shards of one saved set",
		e.URL, e.Hash, e.OtherURL, e.OtherHash)
}

// CheckSameBundle verifies a server's advertised bundle describes the
// same logical database as an anchor server's: same backend name, same
// verifier key, same template — one database, one owner. DialFanout
// runs it across the shard servers and front.DialFront across every
// replica of every shard; the error names both URLs.
func CheckSameBundle(url string, p Params, anchorURL string, anchor Params) error {
	if p.Backend != anchor.Backend {
		return fmt.Errorf("transport: backend %s serves %q, %s serves %q; one logical database required",
			url, p.Backend, anchorURL, anchor.Backend)
	}
	if p.Verifier != anchor.Verifier {
		return fmt.Errorf("transport: backend %s publishes a different verifier key than %s; all shards must share one owner key (vqserve -keyseed)",
			url, anchorURL)
	}
	if !sameTemplate(p.Template, anchor.Template) {
		return fmt.Errorf("transport: backend %s publishes a different template than %s", url, anchorURL)
	}
	return nil
}

// sameTemplate compares two advertised templates field for field.
func sameTemplate(a, b TplJSON) bool {
	if a.Name != b.Name || a.BiasAttr != b.BiasAttr || len(a.CoefAttrs) != len(b.CoefAttrs) {
		return false
	}
	for i := range a.CoefAttrs {
		if a.CoefAttrs[i] != b.CoefAttrs[i] {
			return false
		}
	}
	return true
}
