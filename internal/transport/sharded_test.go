package transport

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http/httptest"
	"testing"

	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/query"
	"aqverify/internal/server"
	"aqverify/internal/shard"
	"aqverify/internal/sig"
	"aqverify/internal/workload"
)

func shardedHandler(t *testing.T, k int) (*Handler, *shard.Set, geometry.Box) {
	t.Helper()
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := shard.NewPlan(dom, 0, k)
	if err != nil {
		t.Fatal(err)
	}
	set, err := shard.Build(tbl, core.Params{
		Mode: core.OneSignature, Signer: signer, Domain: dom,
		Template: funcs.AffineLine(0, 1), Shuffle: true, Seed: 1,
	}, plan)
	if err != nil {
		t.Fatal(err)
	}
	backend, err := server.NewShardedIFMH(set)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(backend)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewIFMHHandler(srv, set.Public())
	if err != nil {
		t.Fatal(err)
	}
	return h, set, dom
}

// TestHTTPShardedBatch drives the shard fan-out end to end over HTTP:
// the client dials with nothing but the URL, every answer verifies, and
// each batch result is attributed to the shard the plan routes it to.
func TestHTTPShardedBatch(t *testing.T) {
	h, set, dom := shardedHandler(t, 4)
	ts := httptest.NewServer(h)
	defer ts.Close()

	cli, err := Dial(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if cli.Shards() != 4 {
		t.Errorf("advertised shards = %d, want 4", cli.Shards())
	}

	rng := rand.New(rand.NewSource(4))
	qs := make([]query.Query, 0, 20)
	for i := 0; i < 16; i++ {
		x := dom.Lo[0] + rng.Float64()*(dom.Hi[0]-dom.Lo[0])
		qs = append(qs, query.NewTopK(geometry.Point{x}, 2))
	}
	for _, c := range set.Plan.Cuts {
		qs = append(qs, query.NewTopK(geometry.Point{c}, 2))
	}
	results, err := cli.QueryBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d rejected: %v", i, r.Err)
		}
		want, err := set.Plan.Route(qs[i].X)
		if err != nil {
			t.Fatal(err)
		}
		if r.Shard != want {
			t.Errorf("query %d attributed to shard %d, routing says %d", i, r.Shard, want)
		}
	}

	// /stats exposes the per-shard tallies and they cover the batch.
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Shards   int                `json:"shards"`
		PerShard []server.ShardStat `json:"perShard"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 4 || len(stats.PerShard) != 4 {
		t.Fatalf("stats advertise %d shards with %d entries, want 4/4", stats.Shards, len(stats.PerShard))
	}
	total := 0
	for _, s := range stats.PerShard {
		total += s.Queries
	}
	if total != len(qs) {
		t.Errorf("per-shard tallies sum to %d, want %d", total, len(qs))
	}
}

// TestHTTPUnshardedShardIsNone: against a single-tree server, batch
// results carry no shard attribution.
func TestHTTPUnshardedShardIsNone(t *testing.T) {
	srv, pub, _, _, dom := fixtures(t)
	h, err := NewIFMHHandler(srv, pub)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	cli, err := Dial(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if cli.Shards() != 0 {
		t.Errorf("advertised shards = %d, want 0", cli.Shards())
	}
	x := geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	results, err := cli.QueryBatch([]query.Query{query.NewTopK(x, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if results[0].Shard != -1 {
		t.Errorf("shard = %d, want -1", results[0].Shard)
	}
}
