package transport

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"aqverify/internal/geometry"
	"aqverify/internal/query"
)

// TestMethodNotAllowed: routes use Go 1.22 method patterns, so a request
// with the wrong method must be a 405, not a silent 404 — the regression
// that hid behind the missing go.mod.
func TestMethodNotAllowed(t *testing.T) {
	srv, pub, _, _, _ := fixtures(t)
	h, err := NewIFMHHandler(srv, pub)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	for _, tc := range []struct{ method, path string }{
		{http.MethodGet, "/query"},
		{http.MethodGet, "/query/batch"},
		{http.MethodPost, "/params"},
		{http.MethodPost, "/stats"},
		{http.MethodDelete, "/query"},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, http.StatusMethodNotAllowed)
		}
	}
}

// TestHTTPBatchRoundTrip drives the batched query plane end to end: many
// queries in one frame, per-item verification on the client, and
// per-item server refusals that do not fail the batch.
func TestHTTPBatchRoundTrip(t *testing.T) {
	srv, pub, _, _, dom := fixtures(t)
	h, err := NewIFMHHandler(srv, pub)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	cli, err := Dial(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	x := geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	qs := []query.Query{
		query.NewTopK(x, 3),
		query.NewBottomK(x, 3),
		query.NewTopK(geometry.Point{dom.Hi[0] + 9}, 1), // refused: outside the domain
		query.NewRange(x, -2, 2),
		query.NewKNN(x, 3, 0),
	}
	results, err := cli.QueryBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(qs) {
		t.Fatalf("got %d results for %d queries", len(results), len(qs))
	}
	for i, r := range results {
		if i == 2 {
			if r.Err == nil {
				t.Error("out-of-domain query succeeded in batch")
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("query %d: %v", i, r.Err)
			continue
		}
		if qs[i].Kind != query.Range && len(r.Records) != 3 {
			t.Errorf("query %d: got %d records", i, len(r.Records))
		}
	}

	// The batched answers must match the sequential endpoint's.
	for i, q := range qs {
		if i == 2 {
			continue
		}
		recs, err := cli.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != len(results[i].Records) {
			t.Errorf("query %d: batch returned %d records, sequential %d", i, len(results[i].Records), len(recs))
		}
		for j := range recs {
			if recs[j].ID != results[i].Records[j].ID {
				t.Errorf("query %d record %d: batch ID %d, sequential %d", i, j, results[i].Records[j].ID, recs[j].ID)
			}
		}
	}
}

// TestHTTPBatchTamperingRejected: a channel flipping bits inside the
// batch frame must not get any record past verification.
func TestHTTPBatchTamperingRejected(t *testing.T) {
	srv, pub, _, _, dom := fixtures(t)
	h, err := NewIFMHHandler(srv, pub)
	if err != nil {
		t.Fatal(err)
	}
	origin := httptest.NewServer(h)
	defer origin.Close()
	target, err := url.Parse(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httptest.NewServer(&tamperingProxy{target: target, hc: origin.Client()})
	defer proxy.Close()

	cli, err := Dial(proxy.URL, proxy.Client())
	if err != nil {
		t.Fatal(err)
	}
	x := geometry.Point{(dom.Lo[0] + dom.Hi[0]) / 2}
	qs := []query.Query{query.NewRange(x, -2, 2), query.NewTopK(x, 3)}
	for trial := 0; trial < 10; trial++ {
		results, err := cli.QueryBatch(qs)
		if err != nil {
			continue // the flipped bit broke the outer frame: also a rejection
		}
		// Every byte of the frame is load-bearing, so the flipped bit
		// must take down at least one item.
		if results[0].Err == nil && results[1].Err == nil {
			t.Fatal("bit-flipped batch answer fully accepted")
		}
	}
}

// TestHTTPBatchBadFrame: junk bytes to the batch endpoint are a 400.
func TestHTTPBatchBadFrame(t *testing.T) {
	srv, pub, _, _, _ := fixtures(t)
	h, err := NewIFMHHandler(srv, pub)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/query/batch", "application/octet-stream", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("junk batch: status %d, want %d", resp.StatusCode, http.StatusBadRequest)
	}
}
