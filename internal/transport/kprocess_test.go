package transport

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"aqverify/internal/backend"
	"aqverify/internal/core"
	"aqverify/internal/funcs"
	"aqverify/internal/geometry"
	"aqverify/internal/metrics"
	"aqverify/internal/query"
	"aqverify/internal/record"
	"aqverify/internal/server"
	"aqverify/internal/shard"
	"aqverify/internal/sig"
	"aqverify/internal/wire"
	"aqverify/internal/workload"
)

// startShardProcess builds shard i's tree alone — exactly what `vqserve
// -shards K -shard i` does — and serves it on its own httptest server,
// standing in for one OS process of the multi-process deployment.
func startShardProcess(t *testing.T, tbl record.Table, p core.Params, plan shard.Plan, i int) *httptest.Server {
	t.Helper()
	tree, err := shard.BuildOne(tbl, p, plan, i)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.IFMH{Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewIFMHHandler(srv, tree.Public())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// kProcessFixture stands up the whole deployment: K shard processes, a
// vqfront-equivalent front-end (DialFanout + NewBackendHandler) on its
// own httptest server, and the single-tree baseline.
func kProcessFixture(t *testing.T, n, k int, mode core.Mode) (front *httptest.Server, f *backend.Fanout, single *core.Tree, dom geometry.Box) {
	t.Helper()
	tbl, dom, err := workload.Lines(workload.LinesConfig{N: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One owner key shared by every process, as `vqserve -keyseed` shares
	// it in a real deployment.
	signer, err := sig.NewSigner(sig.Ed25519, sig.Options{Rand: sig.DeterministicRand(7)})
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{
		Mode: mode, Signer: signer, Domain: dom,
		Template: funcs.AffineLine(0, 1), Shuffle: true, Seed: 1,
	}
	plan, err := shard.NewPlan(dom, 0, k)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		urls[i] = startShardProcess(t, tbl, p, plan, i).URL
	}
	// Hand the URLs over in scrambled order: the front-end must recover
	// shard order from the advertised domains.
	for i, j := 0, len(urls)-1; i < j; i, j = i+1, j-1 {
		urls[i], urls[j] = urls[j], urls[i]
	}
	f, params, err := DialFanout(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumShards() != k {
		t.Fatalf("front-end composed %d shards, want %d", f.NumShards(), k)
	}
	h, err := NewBackendHandler(f, params)
	if err != nil {
		t.Fatal(err)
	}
	front = httptest.NewServer(h)
	t.Cleanup(front.Close)

	single, err = core.Build(tbl, p)
	if err != nil {
		t.Fatal(err)
	}
	return front, f, single, dom
}

// kProcessQueries mixes every query kind across the domain with queries
// pinned on the shard cuts and the domain corners.
func kProcessQueries(dom geometry.Box, cuts []float64) []query.Query {
	var qs []query.Query
	add := func(x float64, k int) {
		p := geometry.Point{x}
		qs = append(qs,
			query.NewTopK(p, k),
			query.NewBottomK(p, k),
			query.NewRange(p, -2, 2),
			query.NewKNN(p, k, 0.5),
		)
	}
	for i := 0; i < 12; i++ {
		add(dom.Lo[0]+(dom.Hi[0]-dom.Lo[0])*float64(2*i+1)/24, 1+i%6)
	}
	for _, c := range cuts {
		add(c, 3)
	}
	add(dom.Lo[0], 2)
	add(dom.Hi[0], 2)
	return qs
}

// TestKProcessIdentity is the acceptance identity for the multi-process
// deployment: K vqserve-equivalent processes behind a vqfront-equivalent
// front-end return, for every query kind — including queries exactly on
// shard cuts and at domain corners — verdicts and result windows
// identical to the single tree built over the full domain, under both
// signing modes. The client dials the front-end exactly as it would dial
// a single vqserve and verifies every answer.
func TestKProcessIdentity(t *testing.T) {
	for _, mode := range []core.Mode{core.OneSignature, core.MultiSignature} {
		front, f, single, dom := kProcessFixture(t, 120, 3, mode)
		qs := kProcessQueries(dom, f.Plan().Cuts)

		// The verifying client sees the front-end as one server.
		cli, err := Dial(front.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cli.Shards() != 3 {
			t.Errorf("%v: front-end advertises %d shards, want 3", mode, cli.Shards())
		}
		pub, ok := cli.Public()
		if !ok {
			t.Fatal("front-end params are not IFMH")
		}
		results, err := cli.QueryBatch(qs)
		if err != nil {
			t.Fatal(err)
		}

		for i, q := range qs {
			want, werr := single.Process(q, &metrics.Counter{})
			if (werr == nil) != (results[i].Err == nil) {
				t.Fatalf("%v query %d: single err=%v, k-process err=%v", mode, i, werr, results[i].Err)
			}
			if werr != nil {
				continue
			}
			if vErr := core.Verify(pub, q, want.Records, &want.VO, &metrics.Counter{}); vErr != nil {
				t.Fatalf("%v query %d: single-tree answer rejected: %v", mode, i, vErr)
			}
			if len(results[i].Records) != len(want.Records) {
				t.Fatalf("%v query %d: k-process returned %d records, single %d",
					mode, i, len(results[i].Records), len(want.Records))
			}
			for j := range want.Records {
				if results[i].Records[j].ID != want.Records[j].ID {
					t.Fatalf("%v query %d: record %d differs (%d vs %d)",
						mode, i, j, results[i].Records[j].ID, want.Records[j].ID)
				}
			}
			wantShard, err := f.Plan().Route(q.X)
			if err != nil {
				t.Fatal(err)
			}
			if results[i].Shard != wantShard {
				t.Fatalf("%v query %d: answered by shard %d, routing says %d",
					mode, i, results[i].Shard, wantShard)
			}
		}

		// Window identity down to the VO layout, via the raw plane.
		remote, err := DialRemote(front.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		answers, errs := remote.QueryBatch(context.Background(), qs, backend.WithVerify(pub))
		for i, q := range qs {
			if errs[i] != nil {
				t.Fatalf("%v query %d: %v", mode, i, errs[i])
			}
			got, err := wire.DecodeIFMH(answers[i].Raw)
			if err != nil {
				t.Fatal(err)
			}
			want, err := single.Process(q, &metrics.Counter{})
			if err != nil {
				t.Fatal(err)
			}
			if got.VO.ListLen != want.VO.ListLen || got.VO.Start != want.VO.Start {
				t.Fatalf("%v query %d: window (%d,%d) vs single (%d,%d)", mode, i,
					got.VO.Start, got.VO.ListLen, want.VO.Start, want.VO.ListLen)
			}
		}

		// The pipelined wire transport must reproduce the buffered
		// verdicts exactly: the front-end merges K per-shard HTTP
		// streams in completion order, but what arrives — bytes,
		// verified records, shard attributions — is the same batch.
		seen := make([]bool, len(qs))
		for i, r := range remote.QueryStream(context.Background(), qs, backend.WithVerify(pub)) {
			if seen[i] {
				t.Fatalf("%v: streamed index %d twice", mode, i)
			}
			seen[i] = true
			if r.Err != nil {
				t.Fatalf("%v streamed query %d: %v", mode, i, r.Err)
			}
			if string(r.Answer.Raw) != string(answers[i].Raw) {
				t.Fatalf("%v streamed query %d: bytes differ from the buffered exchange", mode, i)
			}
			if r.Answer.Shard != answers[i].Shard {
				t.Fatalf("%v streamed query %d: shard %d vs buffered %d",
					mode, i, r.Answer.Shard, answers[i].Shard)
			}
			if len(r.Answer.Records) != len(answers[i].Records) {
				t.Fatalf("%v streamed query %d: %d verified records vs buffered %d",
					mode, i, len(r.Answer.Records), len(answers[i].Records))
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("%v: stream never delivered query %d", mode, i)
			}
		}
	}
}

// TestKProcessSingleQueryAndStats drives the non-batch endpoint through
// the front-end and checks the front-end's own /stats tally.
func TestKProcessSingleQueryAndStats(t *testing.T) {
	front, f, single, dom := kProcessFixture(t, 80, 2, core.MultiSignature)
	cli, err := Dial(front.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	probe := append([]float64{(dom.Lo[0] + dom.Hi[0]) / 2}, f.Plan().Cuts...)
	served := 0
	for _, x := range probe {
		q := query.NewTopK(geometry.Point{x}, 3)
		recs, err := cli.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		served++
		want, err := single.Process(q, &metrics.Counter{})
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != len(want.Records) {
			t.Fatalf("query at %v: %d records, single tree %d", x, len(recs), len(want.Records))
		}
	}
	// An unroutable query is refused by the front-end.
	if _, err := cli.Query(query.NewTopK(geometry.Point{dom.Hi[0] + 1}, 1)); err == nil {
		t.Fatal("out-of-domain query answered")
	}

	resp, err := http.Get(front.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Backend  string             `json:"backend"`
		Queries  int                `json:"queries"`
		Errors   int                `json:"errors"`
		Shards   int                `json:"shards"`
		PerShard []server.ShardStat `json:"perShard"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Backend != "ifmh-multi" {
		t.Errorf("stats backend = %q", stats.Backend)
	}
	if stats.Queries != served || stats.Errors != 1 {
		t.Errorf("stats queries=%d errors=%d, want %d/1", stats.Queries, stats.Errors, served)
	}
	if stats.Shards != 2 || len(stats.PerShard) != 2 {
		t.Fatalf("stats shards=%d perShard=%d, want 2/2", stats.Shards, len(stats.PerShard))
	}
	sum := 0
	for _, s := range stats.PerShard {
		sum += s.Queries
	}
	if sum != served {
		t.Errorf("per-shard tallies sum to %d, want %d", sum, served)
	}
}
