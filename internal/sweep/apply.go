package sweep

import (
	"context"
	"fmt"
	"math/big"
	"sort"

	"aqverify/internal/funcs"
)

// Boundary describes one boundary of a mutated arrangement for
// ApplyCtx: its alignment against the previous plan and its crossing
// pairs (in new function indexes).
type Boundary struct {
	// Old is the boundary's index in the previous plan, or -1 for a
	// brand-new breakpoint.
	Old int
	// Dirty reports whether the boundary's crossing-pair set changed.
	// Clean boundaries replay the previous plan's swaps; dirty ones are
	// re-sorted exactly.
	Dirty bool
	// Group lists the pairs crossing at the boundary.
	Group []Pair
}

// ApplyCtx computes the sweep plan of a mutated arrangement from the
// previous plan, byte-identical to a full ComputeCtx over the new
// inputs but touching exact arithmetic only where the mutation did.
//
// cleanRemap maps each previous function index to its new index (-1
// when deleted or updated), dirtyNew marks the new indexes whose
// functions are new or updated, bs aligns the new boundaries against
// the previous plan, and witnessAt returns an exact interior witness
// of new subdomain k — consulted only for subdomain 0 and the right
// neighbors of dirty boundaries.
//
// Why replay is exact: surviving functions keep their pairwise order
// through every clean boundary (a surviving pair that reordered there
// would be a surviving crossing, keeping the boundary's group alive
// and unchanged is exactly the clean case), and no dirty function can
// sit inside a clean boundary's tied run — a function between two
// functions that tie at the breakpoint ties there too, which would
// make the boundary dirty. Each clean swap of the old plan therefore
// names two surviving functions that are again adjacent in the new
// permutation, and the translated swap sequence is the one a full
// re-sort would emit. ApplyCtx verifies the adjacency at every
// translated swap and fails loudly if the alignment breaks.
func ApplyCtx(ctx context.Context, fs []funcs.Linear, old Plan, cleanRemap []int, dirtyNew []bool, bs []Boundary, witnessAt func(k int) *big.Rat) (Plan, error) {
	if len(dirtyNew) != len(fs) {
		return Plan{}, fmt.Errorf("sweep: dirty mask has %d entries for %d functions", len(dirtyNew), len(fs))
	}
	base, err := mergeBase(fs, old.BasePerm, cleanRemap, dirtyNew, witnessAt(0))
	if err != nil {
		return Plan{}, err
	}
	plan := Plan{BasePerm: base, Swaps: make([][]int, len(bs))}

	perm := append([]int(nil), base...)
	inv := funcs.InversePerm(perm)
	// The old plan is replayed alongside: oldPerm tracks the previous
	// arrangement's permutation so that old swap positions can be
	// decoded into the functions they moved. Boundaries of the old plan
	// that died (every crossing pair involved a mutated function) are
	// replayed too — they reorder mutated functions within oldPerm, and
	// skipping them would desynchronize the decode.
	oldPerm := append([]int(nil), old.BasePerm...)
	oldAt := 0 // next old boundary to replay
	replayOld := func(upto int) error {
		for ; oldAt < upto; oldAt++ {
			if oldAt >= len(old.Swaps) {
				return fmt.Errorf("sweep: alignment references old boundary %d of %d", oldAt, len(old.Swaps))
			}
			for _, p := range old.Swaps[oldAt] {
				oldPerm[p], oldPerm[p+1] = oldPerm[p+1], oldPerm[p]
			}
		}
		return nil
	}

	for k, b := range bs {
		if err := ctx.Err(); err != nil {
			return Plan{}, err
		}
		if len(b.Group) == 0 {
			return Plan{}, fmt.Errorf("sweep: boundary %d has no crossing pairs", k)
		}
		if b.Old >= 0 {
			if err := replayOld(b.Old); err != nil {
				return Plan{}, err
			}
		}
		if b.Dirty {
			swaps, err := applyCrossing(fs, perm, inv, b.Group, witnessAt(k+1))
			if err != nil {
				return Plan{}, fmt.Errorf("sweep: boundary %d: %w", k, err)
			}
			plan.Swaps[k] = swaps
			if b.Old >= 0 {
				if err := replayOld(b.Old + 1); err != nil {
					return Plan{}, err
				}
			}
			continue
		}
		// Clean boundary: translate the old swaps. Each old position
		// names two surviving functions that must be adjacent in the
		// new permutation; the new position is where they sit now.
		if b.Old < 0 {
			return Plan{}, fmt.Errorf("sweep: boundary %d is clean but has no previous boundary", k)
		}
		oldSwaps := old.Swaps[b.Old]
		swaps := make([]int, 0, len(oldSwaps))
		for _, p := range oldSwaps {
			if p < 0 || p+1 >= len(oldPerm) {
				return Plan{}, fmt.Errorf("sweep: old swap position %d out of range", p)
			}
			x, y := oldPerm[p], oldPerm[p+1]
			nx, ny := cleanRemap[x], cleanRemap[y]
			if nx < 0 || ny < 0 {
				return Plan{}, fmt.Errorf("sweep: clean boundary %d swaps mutated function", k)
			}
			np := inv[nx]
			if inv[ny] != np+1 {
				return Plan{}, fmt.Errorf("sweep: clean boundary %d: functions %d,%d not adjacent after remap", k, nx, ny)
			}
			swaps = append(swaps, np)
			oldPerm[p], oldPerm[p+1] = oldPerm[p+1], oldPerm[p]
			perm[np], perm[np+1] = perm[np+1], perm[np]
			inv[perm[np]], inv[perm[np+1]] = np, np+1
		}
		plan.Swaps[k] = swaps
		oldAt = b.Old + 1
	}
	return plan, nil
}

// mergeBase derives the new base permutation: surviving functions keep
// their previous relative order (their pairwise comparisons inside
// subdomain 0 are unchanged — any reorder would be a surviving
// breakpoint left of the first boundary), and each dirty function is
// placed by exact binary search at the new base witness. The result is
// the unique exact sorted order at w, without the O(n log n) full sort.
func mergeBase(fs []funcs.Linear, oldBase []int, cleanRemap []int, dirtyNew []bool, w *big.Rat) ([]int, error) {
	survivors := make([]int, 0, len(oldBase))
	for _, f := range oldBase {
		if f < 0 || f >= len(cleanRemap) {
			return nil, fmt.Errorf("sweep: old base references function %d outside the remap", f)
		}
		if nf := cleanRemap[f]; nf >= 0 {
			survivors = append(survivors, nf)
		}
	}
	var dirty []int
	for f, d := range dirtyNew {
		if d {
			dirty = append(dirty, f)
		}
	}
	if len(survivors)+len(dirty) != len(fs) {
		return nil, fmt.Errorf("sweep: %d survivors + %d dirty != %d functions", len(survivors), len(dirty), len(fs))
	}
	// Order the dirty functions among themselves exactly, then find
	// each one's insertion point among the survivors; ties place the
	// smaller function index first, matching funcs.SortAtRat.
	sort.Slice(dirty, func(a, b int) bool {
		return rankLess(fs[dirty[a]], fs[dirty[b]], w)
	})
	at := make([]int, len(dirty)) // insertion index into survivors
	for i, f := range dirty {
		at[i] = sort.Search(len(survivors), func(s int) bool {
			return rankLess(fs[f], fs[survivors[s]], w)
		})
	}
	out := make([]int, 0, len(fs))
	di := 0
	for s := 0; s <= len(survivors); s++ {
		for di < len(dirty) && at[di] == s {
			out = append(out, dirty[di])
			di++
		}
		if s < len(survivors) {
			out = append(out, survivors[s])
		}
	}
	return out, nil
}
