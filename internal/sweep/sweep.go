// Package sweep computes the 1-D subdomain sweep shared by the IFMH-tree
// and the signature-mesh baseline: given the subdomains of a univariate
// arrangement in left-to-right order, it produces the exact sorted order
// of the leftmost subdomain plus, per boundary, the ordered adjacent
// transpositions that turn each subdomain's order into its right
// neighbor's.
//
// The functions intersecting at a boundary tie exactly there, so their
// positions form contiguous runs; each run is re-sorted to the next
// subdomain's exact rational order with bubble transpositions. This is
// what makes the delta representation (one base permutation + O(1)
// amortized swaps per intersection) possible.
package sweep

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"sync"

	"aqverify/internal/funcs"
	"aqverify/internal/pool"
)

// Pair names two intersecting functions by index.
type Pair struct{ I, J int }

// Plan is a computed sweep: BasePerm is subdomain 0's sorted order
// (position -> function index); Swaps[k] lists the adjacent-swap
// positions applied crossing from subdomain k to k+1, in order.
type Plan struct {
	BasePerm []int
	Swaps    [][]int
}

// NumSubdomains returns the subdomain count the plan covers.
func (p Plan) NumSubdomains() int { return len(p.Swaps) + 1 }

// TotalSwaps returns the total transposition count across all boundaries
// (equal to the number of genuinely crossing pairs).
func (p Plan) TotalSwaps() int {
	total := 0
	for _, s := range p.Swaps {
		total += len(s)
	}
	return total
}

// Compute builds the plan. witnesses[k] must be an exact interior point of
// subdomain k (k = 0..S-1); groups[k] lists the function pairs whose
// intersection forms boundary k (k = 0..S-2).
func Compute(fs []funcs.Linear, witnesses []*big.Rat, groups [][]Pair) (Plan, error) {
	return ComputeCtx(context.Background(), fs, witnesses, groups, 1)
}

// ComputeCtx is Compute with the boundary sweep sharded across a worker
// pool and cooperative cancellation. The sweep looks inherently serial —
// each boundary's swaps are derived from the permutation to its left —
// but the permutation inside subdomain k is fully determined without
// sweeping: it is the exact sorted order at witness k (ties by function
// index), because every pair that reorders between adjacent witnesses
// crosses at the boundary between them and is re-sorted there. Each
// worker therefore seeds a contiguous boundary chunk with one O(n log n)
// exact sort at the chunk's first witness and sweeps only its own chunk;
// chunk seams are cross-checked after the join (each chunk's final
// permutation must equal its right neighbor's seed), so a broken
// contiguity assumption fails loudly instead of producing a wrong plan.
//
// Swaps[k] depends only on (exact permutation at k, groups[k],
// witnesses[k+1]), so the plan is byte-identical for every worker count.
// workers <= 0 means one per CPU.
func ComputeCtx(ctx context.Context, fs []funcs.Linear, witnesses []*big.Rat, groups [][]Pair, workers int) (Plan, error) {
	if len(witnesses) == 0 {
		return Plan{}, fmt.Errorf("sweep: no subdomains")
	}
	if len(groups) != len(witnesses)-1 {
		return Plan{}, fmt.Errorf("sweep: %d witnesses need %d boundary groups, got %d",
			len(witnesses), len(witnesses)-1, len(groups))
	}
	for k, group := range groups {
		if len(group) == 0 {
			return Plan{}, fmt.Errorf("sweep: boundary %d has no crossing pairs", k)
		}
	}
	chunks := pool.Workers(workers, len(groups))
	plan := Plan{Swaps: make([][]int, len(groups))}
	seeds := make([][]int, chunks)  // chunk c's seed permutation
	finals := make([][]int, chunks) // chunk c's permutation after its last boundary
	errs := make([]error, chunks)
	b := len(groups)
	runErr := pool.RunCtx(ctx, chunks, chunks, func(_, c int) {
		lo, hi := c*b/chunks, (c+1)*b/chunks
		perm := funcs.SortAtRat(fs, witnesses[lo])
		seeds[c] = append([]int(nil), perm...)
		inv := funcs.InversePerm(perm)
		for k := lo; k < hi; k++ {
			if ctx.Err() != nil {
				return
			}
			swaps, err := applyCrossing(fs, perm, inv, groups[k], witnesses[k+1])
			if err != nil {
				errs[c] = fmt.Errorf("sweep: boundary %d: %w", k, err)
				return
			}
			plan.Swaps[k] = swaps
		}
		finals[c] = perm
	})
	for _, err := range errs {
		if err != nil {
			return Plan{}, err
		}
	}
	if runErr != nil {
		return Plan{}, runErr
	}
	if err := ctx.Err(); err != nil {
		return Plan{}, err
	}
	for c := 0; c+1 < chunks; c++ {
		if !equalPerm(finals[c], seeds[c+1]) {
			return Plan{}, fmt.Errorf("sweep: chunk seam mismatch at boundary %d: swept permutation disagrees with the exact sorted order", (c+1)*b/chunks)
		}
	}
	plan.BasePerm = seeds[0]
	return plan, nil
}

// equalPerm reports whether two permutations are identical.
func equalPerm(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// applyCrossing mutates perm/inv across one boundary and returns the
// swap positions applied.
func applyCrossing(fs []funcs.Linear, perm, inv []int, group []Pair, nextWitness *big.Rat) ([]int, error) {
	involved := map[int]bool{}
	for _, pr := range group {
		involved[pr.I] = true
		involved[pr.J] = true
	}
	positions := make([]int, 0, len(involved))
	//lint:ignore mapdeterminism order-blind: positions are sorted immediately below, before any use
	for f := range involved {
		if f < 0 || f >= len(perm) {
			return nil, fmt.Errorf("pair references function %d outside [0,%d)", f, len(perm))
		}
		positions = append(positions, inv[f])
	}
	sort.Ints(positions)

	var swaps []int
	for i := 0; i < len(positions); {
		j := i
		for j+1 < len(positions) && positions[j+1] == positions[j]+1 {
			j++
		}
		s := resortRun(fs, perm, inv, positions[i], positions[j], nextWitness)
		swaps = append(swaps, s...)
		i = j + 1
	}

	// Defensive cross-check: every crossing pair must now be ordered as
	// the next subdomain demands; a violation means the contiguity
	// assumption broke and the caller must not build on a wrong order.
	for _, pr := range group {
		want := rankLess(fs[pr.I], fs[pr.J], nextWitness)
		if (inv[pr.I] < inv[pr.J]) != want {
			return nil, fmt.Errorf("pair (%d,%d) not ordered for the next subdomain", pr.I, pr.J)
		}
	}
	return swaps, nil
}

// rankLess reports whether f sorts before g at the exact point w.
func rankLess(f, g funcs.Linear, w *big.Rat) bool {
	if c := f.EvalRat(w).Cmp(g.EvalRat(w)); c != 0 {
		return c < 0
	}
	return f.Index < g.Index
}

// resortRun bubble-sorts the block perm[lo..hi] into the exact order at
// witness w, recording each adjacent transposition.
func resortRun(fs []funcs.Linear, perm, inv []int, lo, hi int, w *big.Rat) []int {
	block := append([]int(nil), perm[lo:hi+1]...)
	sort.Slice(block, func(a, b int) bool {
		return rankLess(fs[block[a]], fs[block[b]], w)
	})
	rank := make(map[int]int, len(block))
	for r, f := range block {
		rank[f] = r
	}
	var swaps []int
	for pass := 0; pass < len(block); pass++ {
		moved := false
		for p := lo; p < hi; p++ {
			if rank[perm[p]] > rank[perm[p+1]] {
				perm[p], perm[p+1] = perm[p+1], perm[p]
				inv[perm[p]] = p
				inv[perm[p+1]] = p + 1
				swaps = append(swaps, p)
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return swaps
}

// Cursor materializes any subdomain's permutation from a plan by
// replaying swaps; it is safe for concurrent use. PermAt returns a fresh
// copy made under the cursor's lock, so callers may read it while other
// goroutines advance the cursor.
type Cursor struct {
	mu   sync.Mutex
	plan Plan
	perm []int
	at   int
}

// NewCursor returns a cursor positioned at subdomain 0.
func NewCursor(plan Plan) *Cursor {
	return &Cursor{plan: plan, perm: append([]int(nil), plan.BasePerm...)}
}

// PermAt returns the sorted permutation of subdomain id.
func (c *Cursor) PermAt(id int) ([]int, error) {
	if id < 0 || id >= c.plan.NumSubdomains() {
		return nil, fmt.Errorf("sweep: subdomain %d out of range [0,%d)", id, c.plan.NumSubdomains())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.at < id {
		for _, pos := range c.plan.Swaps[c.at] {
			c.perm[pos], c.perm[pos+1] = c.perm[pos+1], c.perm[pos]
		}
		c.at++
	}
	for c.at > id {
		c.at--
		sw := c.plan.Swaps[c.at]
		// Adjacent transpositions are involutions: applying a crossing's
		// swaps in reverse order undoes it.
		for i := len(sw) - 1; i >= 0; i-- {
			pos := sw[i]
			c.perm[pos], c.perm[pos+1] = c.perm[pos+1], c.perm[pos]
		}
	}
	return append([]int(nil), c.perm...), nil
}
