package sweep

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"sort"
	"testing"

	"aqverify/internal/funcs"
)

// arrangement computes, for a set of lines over [lo,hi], the sorted
// distinct interior breakpoints, per-boundary crossing pairs, and exact
// witnesses — a miniature of what core/mesh derive from their structures.
func arrangement(fs []funcs.Linear, lo, hi *big.Rat) (witnesses []*big.Rat, groups [][]Pair) {
	type bp struct {
		t    *big.Rat
		pair Pair
	}
	var bps []bp
	for i := 0; i < len(fs); i++ {
		for j := i + 1; j < len(fs); j++ {
			dc := new(big.Rat).Sub(ratOf(fs[i].Coef[0]), ratOf(fs[j].Coef[0]))
			if dc.Sign() == 0 {
				continue
			}
			db := new(big.Rat).Sub(ratOf(fs[j].Bias), ratOf(fs[i].Bias))
			t := new(big.Rat).Quo(db, dc)
			if t.Cmp(lo) <= 0 || t.Cmp(hi) >= 0 {
				continue
			}
			bps = append(bps, bp{t: t, pair: Pair{I: i, J: j}})
		}
	}
	sort.Slice(bps, func(a, b int) bool { return bps[a].t.Cmp(bps[b].t) < 0 })
	// Distinct boundaries with grouped pairs.
	var bounds []*big.Rat
	for _, b := range bps {
		if len(bounds) == 0 || bounds[len(bounds)-1].Cmp(b.t) != 0 {
			bounds = append(bounds, b.t)
			groups = append(groups, nil)
		}
		groups[len(groups)-1] = append(groups[len(groups)-1], b.pair)
	}
	// Witness of subdomain k: midpoint of its interval.
	edges := append([]*big.Rat{lo}, bounds...)
	edges = append(edges, hi)
	for k := 0; k+1 < len(edges); k++ {
		m := new(big.Rat).Add(edges[k], edges[k+1])
		witnesses = append(witnesses, m.Quo(m, big.NewRat(2, 1)))
	}
	return witnesses, groups
}

func ratOf(f float64) *big.Rat { return new(big.Rat).SetFloat64(f) }

func randLines(n int, seed int64) []funcs.Linear {
	rng := rand.New(rand.NewSource(seed))
	fs := make([]funcs.Linear, n)
	for i := range fs {
		fs[i] = funcs.Linear{
			Index: i, RecordID: uint64(i + 1),
			Coef: []float64{rng.NormFloat64()},
			Bias: rng.NormFloat64(),
		}
	}
	return fs
}

func TestComputeMatchesDirectSort(t *testing.T) {
	lo, hi := big.NewRat(-2, 1), big.NewRat(2, 1)
	for seed := int64(0); seed < 10; seed++ {
		fs := randLines(12, seed)
		witnesses, groups := arrangement(fs, lo, hi)
		plan, err := Compute(fs, witnesses, groups)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if plan.NumSubdomains() != len(witnesses) {
			t.Fatalf("seed %d: plan covers %d subdomains, want %d", seed, plan.NumSubdomains(), len(witnesses))
		}
		// Replaying the plan must match a fresh exact sort at every
		// witness.
		perm := append([]int(nil), plan.BasePerm...)
		for k, w := range witnesses {
			if k > 0 {
				for _, pos := range plan.Swaps[k-1] {
					perm[pos], perm[pos+1] = perm[pos+1], perm[pos]
				}
			}
			want := funcs.SortAtRat(fs, w)
			for i := range want {
				if perm[i] != want[i] {
					t.Fatalf("seed %d: subdomain %d order diverges at position %d", seed, k, i)
				}
			}
		}
		// Total swaps = total crossing pairs.
		pairs := 0
		for _, g := range groups {
			pairs += len(g)
		}
		if plan.TotalSwaps() != pairs {
			t.Errorf("seed %d: %d swaps for %d crossing pairs", seed, plan.TotalSwaps(), pairs)
		}
	}
}

func TestComputePencilDegenerate(t *testing.T) {
	// Four lines through the origin: a single boundary where all six
	// pairs cross at once and the whole order reverses.
	fs := []funcs.Linear{
		{Index: 0, Coef: []float64{1}, Bias: 0},
		{Index: 1, Coef: []float64{2}, Bias: 0},
		{Index: 2, Coef: []float64{-1}, Bias: 0},
		{Index: 3, Coef: []float64{0.5}, Bias: 0},
	}
	lo, hi := big.NewRat(-1, 1), big.NewRat(1, 1)
	witnesses, groups := arrangement(fs, lo, hi)
	if len(witnesses) != 2 || len(groups) != 1 || len(groups[0]) != 6 {
		t.Fatalf("arrangement: %d subdomains, groups %v", len(witnesses), groups)
	}
	plan, err := Compute(fs, witnesses, groups)
	if err != nil {
		t.Fatal(err)
	}
	perm := append([]int(nil), plan.BasePerm...)
	for _, pos := range plan.Swaps[0] {
		perm[pos], perm[pos+1] = perm[pos+1], perm[pos]
	}
	want := funcs.SortAtRat(fs, witnesses[1])
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("pencil crossing produced wrong order: got %v want %v", perm, want)
		}
	}
	// A full reversal of a 4-block needs 6 transpositions.
	if plan.TotalSwaps() != 6 {
		t.Errorf("TotalSwaps = %d, want 6", plan.TotalSwaps())
	}
}

func TestComputeValidation(t *testing.T) {
	fs := randLines(3, 1)
	if _, err := Compute(fs, nil, nil); err == nil {
		t.Error("no subdomains accepted")
	}
	w := []*big.Rat{big.NewRat(0, 1), big.NewRat(1, 1)}
	if _, err := Compute(fs, w, nil); err == nil {
		t.Error("missing boundary groups accepted")
	}
	if _, err := Compute(fs, w, [][]Pair{{}}); err == nil {
		t.Error("empty boundary group accepted")
	}
	if _, err := Compute(fs, w, [][]Pair{{{I: 0, J: 99}}}); err == nil {
		t.Error("out-of-range pair accepted")
	}
}

func TestCursorRandomWalk(t *testing.T) {
	lo, hi := big.NewRat(-1, 1), big.NewRat(1, 1)
	fs := randLines(15, 3)
	witnesses, groups := arrangement(fs, lo, hi)
	plan, err := Compute(fs, witnesses, groups)
	if err != nil {
		t.Fatal(err)
	}
	cur := NewCursor(plan)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		id := rng.Intn(plan.NumSubdomains())
		got, err := cur.PermAt(id)
		if err != nil {
			t.Fatal(err)
		}
		want := funcs.SortAtRat(fs, witnesses[id])
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: cursor perm at %d wrong", trial, id)
			}
		}
	}
	if _, err := cur.PermAt(-1); err == nil {
		t.Error("negative subdomain accepted")
	}
	if _, err := cur.PermAt(plan.NumSubdomains()); err == nil {
		t.Error("out-of-range subdomain accepted")
	}
}

// TestComputeCtxWorkersIdentity is the byte-identity contract of the
// chunked sweep: for every worker count the plan — base permutation and
// every boundary's swap list, in order — must equal the serial sweep's
// exactly, because FMH derivation replays the swaps by position.
func TestComputeCtxWorkersIdentity(t *testing.T) {
	for _, n := range []int{12, 60, 150} {
		fs := randLines(n, int64(n))
		witnesses, groups := arrangement(fs, ratOf(-1), ratOf(1))
		serial, err := Compute(fs, witnesses, groups)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 7, 32} {
			par, err := ComputeCtx(context.Background(), fs, witnesses, groups, workers)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			if !equalPerm(par.BasePerm, serial.BasePerm) {
				t.Fatalf("n=%d workers=%d: base permutations differ", n, workers)
			}
			if len(par.Swaps) != len(serial.Swaps) {
				t.Fatalf("n=%d workers=%d: %d boundaries, want %d", n, workers, len(par.Swaps), len(serial.Swaps))
			}
			for k := range serial.Swaps {
				if !equalPerm(par.Swaps[k], serial.Swaps[k]) {
					t.Fatalf("n=%d workers=%d: swap list %d differs: %v vs %v",
						n, workers, k, par.Swaps[k], serial.Swaps[k])
				}
			}
		}
	}
}

// TestComputeCtxSeedInvariant pins the decomposition ComputeCtx relies
// on: the swept permutation entering any subdomain equals the exact
// sorted order at that subdomain's witness, so a chunk may seed itself
// with one sort instead of sweeping from the left edge.
func TestComputeCtxSeedInvariant(t *testing.T) {
	fs := randLines(80, 4)
	witnesses, groups := arrangement(fs, ratOf(-1), ratOf(1))
	plan, err := Compute(fs, witnesses, groups)
	if err != nil {
		t.Fatal(err)
	}
	cursor := NewCursor(plan)
	for k := range witnesses {
		swept, err := cursor.PermAt(k)
		if err != nil {
			t.Fatal(err)
		}
		if sorted := funcs.SortAtRat(fs, witnesses[k]); !equalPerm(swept, sorted) {
			t.Fatalf("subdomain %d: swept permutation disagrees with the exact sorted order", k)
		}
	}
}

// TestComputeCtxCanceled: a pre-canceled context aborts the sweep and
// surfaces context.Canceled.
func TestComputeCtxCanceled(t *testing.T) {
	fs := randLines(40, 6)
	witnesses, groups := arrangement(fs, ratOf(-1), ratOf(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ComputeCtx(ctx, fs, witnesses, groups, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
